//! The 4D TeleCast session orchestrator.
//!
//! [`TelecastSession`] ties every substrate together and drives the
//! paper's protocols through the discrete-event engine:
//!
//! * **join** (Fig. 5): viewer → GSC → LSC legs, then bandwidth
//!   allocation (§IV-B1), topology formation per accepted stream
//!   (§IV-B2), delay-layer subscription with push-down (§V), and the
//!   subscription chain to displaced subtrees;
//! * **view change** (§VI): instant CDN serving of the new view plus a
//!   background join, with victim recovery;
//! * **departure/failure**: victim viewers are parked on the CDN at their
//!   current delay layer and repositioned via degree push-down in the
//!   background.
//!
//! All stochastic inputs derive from the configured seed; two sessions
//! with equal configuration and workload produce identical metrics.

use std::collections::{BTreeMap, VecDeque};

use telecast_sim::{FxHashMap, FxHashSet};

use telecast_cdn::{Autoscaler, CapacityBroker, ScaleDirection, TenantHandle};
use telecast_media::{PrioritizedStream, StreamId, ViewCatalog, ViewId};
use telecast_net::{
    Bandwidth, CoordinateDelayModel, DelayBackend, DelayModel, NodeId, NodeKind, NodePorts,
    NodeRegistry, Region, SyntheticPlanetLab,
};
use telecast_overlay::{GroupTable, StreamTree, SubscriptionPoint, TreeParent};
use telecast_sim::{Engine, SimDuration, SimRng, SimTime};

use crate::alloc::{allocate_inbound, allocate_outbound, covers_all_sites};
use crate::config::{DelayModelChoice, GroupScope, PlacementStrategy, SessionConfig};
use crate::error::TelecastError;
use crate::layers::LayerScheme;
use crate::metrics::SessionMetrics;
use crate::monitor::GscMonitor;
use crate::viewer::{StreamSub, ViewerState, ViewerStatus};
use telecast_media::FrameNumber;

/// Damping cap for subscription-chain propagation per structural change.
const RESYNC_VISIT_CAP: usize = 8;

/// How many times one viewer's parked join may be retried before it is
/// given up on. Bounds viewers whose rejection is *not* a pool-capacity
/// signal (e.g. insufficient inbound) — without the cap they would loop
/// retry → reject → re-park on every autoscale tick forever.
const JOIN_RETRY_CAP: u32 = 8;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SessionEvent {
    ProcessJoin {
        viewer: NodeId,
        view: ViewId,
        requested_at: SimTime,
    },
    CompleteJoin {
        viewer: NodeId,
        requested_at: SimTime,
    },
    ProcessViewChange {
        viewer: NodeId,
        view: ViewId,
        requested_at: SimTime,
    },
    BackgroundJoin {
        viewer: NodeId,
        view: ViewId,
    },
    ProcessDepart {
        viewer: NodeId,
    },
    RepositionVictim {
        viewer: NodeId,
        stream: StreamId,
    },
    /// §VI delay-layer adaptation tick: every connected viewer re-derives
    /// its layers from the currently observed delays.
    PeriodicAdaptation,
    /// One Poisson churn arrival: admit a pool viewer and self-schedule
    /// the next arrival while before the churn horizon.
    ChurnArrival,
    /// End of a churn-admitted viewer's dwell: depart gracefully or
    /// (`fail`) abruptly, and return the viewer to the churn pool.
    ChurnLeave {
        viewer: NodeId,
        fail: bool,
    },
    /// GSC monitoring sample: record population and CDN usage into the
    /// session time series (paper §III's continuous monitoring, as an
    /// engine event rather than an ad-hoc tick).
    MonitorSample,
    /// Elastic-CDN control tick: evaluate the autoscale policy against
    /// the outbound pool, apply any scale action, and retry parked
    /// CDN-rejected joins after a scale-up.
    AutoscaleTick,
}

/// Builder for [`TelecastSession`]; fixes the viewer population so the
/// latency matrix can cover every node.
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    config: SessionConfig,
    viewer_count: usize,
    home_region: Option<Region>,
    cdn_handle: Option<TenantHandle>,
}

impl SessionBuilder {
    /// Attaches this session to a shared [`CapacityBroker`] through
    /// `handle` instead of letting it own a private CDN — the
    /// multi-tenant path (and the sharded runtime's, where every shard
    /// windows one slot of the same broker). Without this call the
    /// builder constructs a single-tenant broker with a full quota,
    /// which behaves exactly like the legacy owned `Cdn`.
    pub fn with_cdn_handle(mut self, handle: TenantHandle) -> Self {
        self.cdn_handle = Some(handle);
        self
    }
    /// Number of viewer gateways to provision (they start idle; joins are
    /// driven by the workload).
    pub fn viewers(mut self, count: usize) -> Self {
        self.viewer_count = count;
        self
    }

    /// Provisions `count` viewer gateways **all in `region`** instead of
    /// sampling regions from the population weights — the shard builder:
    /// a per-region shard owns exactly its region's viewers, and the
    /// coordinator splits the global population by the same weights the
    /// sampler would have used.
    pub fn viewers_in(mut self, count: usize, region: Region) -> Self {
        self.viewer_count = count;
        self.home_region = Some(region);
        self
    }

    /// Constructs the session.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`SessionConfig::validate`]).
    pub fn build(self) -> TelecastSession {
        let config = self.config;
        if let Err(msg) = config.validate() {
            panic!("invalid session config: {msg}");
        }
        let catalog = ViewCatalog::canonical(&config.sites, config.streams_per_local_view);
        let scheme = LayerScheme::new(config.cdn.delta, config.dbuff, config.kappa, config.dmax);

        let mut rng = SimRng::seed_from_u64(config.seed);
        let mut topology_rng = rng.fork(1);
        let workload_rng = rng.fork(2);

        let mut registry = NodeRegistry::new();
        // Producers, GSC, per-region LSCs and CDN edges first, then the
        // viewer pool.
        for site in &config.sites {
            let _ = site; // producer gateways share the GSC's region here
            registry.add(NodeKind::Producer, Region::NorthAmerica);
        }
        let gsc_node = registry.add(NodeKind::GlobalController, Region::NorthAmerica);
        let mut lsc_nodes = BTreeMap::new();
        let mut edge_nodes = BTreeMap::new();
        for &region in &Region::ALL {
            lsc_nodes.insert(region, registry.add(NodeKind::LocalController, region));
            edge_nodes.insert(region, registry.add(NodeKind::CdnServer, region));
        }
        let mut viewer_pool = Vec::with_capacity(self.viewer_count);
        let mut viewers = BTreeMap::new();
        for _ in 0..self.viewer_count {
            let region = match self.home_region {
                Some(region) => region,
                None => sample_region(&mut topology_rng),
            };
            let node = registry.add(NodeKind::Viewer, region);
            let ports = NodePorts::new(
                config.viewer_inbound.sample(&mut topology_rng),
                config.viewer_outbound.sample(&mut topology_rng),
            );
            viewers.insert(node, ViewerState::new(node, region, ports));
            viewer_pool.push(node);
        }

        let delay_seed = config.seed ^ 0x0D15_EA5E;
        let delays = match config.delay_model {
            DelayModelChoice::Auto => DelayBackend::auto(&registry, delay_seed),
            DelayModelChoice::Dense => {
                DelayBackend::Dense(SyntheticPlanetLab::generate(&registry, delay_seed))
            }
            DelayModelChoice::Coordinate => {
                DelayBackend::Coordinate(CoordinateDelayModel::generate(&registry, delay_seed))
            }
        };
        let scope_count = match config.group_scope {
            GroupScope::PerLsc => Region::ALL.len(),
            GroupScope::Global => 1,
        };

        let mut stream_bw = FxHashMap::default();
        let mut stream_fps = FxHashMap::default();
        for site in &config.sites {
            for s in site.streams() {
                stream_bw.insert(s.id, Bandwidth::from_kbps(s.bitrate_kbps));
                stream_fps.insert(s.id, s.fps);
            }
        }

        let monitor = GscMonitor::new(&config.sites, lsc_nodes.clone());
        let cdn = match self.cdn_handle {
            Some(handle) => handle,
            None => CapacityBroker::single(config.cdn),
        };
        let pool_slots = cdn.pool_slots();
        let autoscalers = build_autoscalers(&config, pool_slots);
        // Pre-size the hot-path queues to the population: a churning
        // session keeps roughly one dwell timer per connected viewer in
        // the heap, so without the headroom a million-viewer prefill
        // reallocates (and copies) the heap a dozen times mid-run.
        let event_capacity = self.viewer_count + self.viewer_count / 4 + 64;
        let retry_capacity = (self.viewer_count / pool_slots.max(1) / 8).max(16);
        TelecastSession {
            cdn,
            monitor,
            catalog,
            scheme,
            registry,
            delays,
            engine: Engine::with_capacity(event_capacity),
            gsc_node,
            lsc_nodes,
            edge_nodes,
            scopes: (0..scope_count).map(|_| GroupTable::new()).collect(),
            random_trees: FxHashMap::default(),
            random_receivers: FxHashMap::default(),
            random_edge_parent: FxHashMap::default(),
            viewers,
            viewer_pool,
            stream_bw,
            stream_fps,
            metrics: SessionMetrics::new(),
            rng: workload_rng,
            adaptation_armed: false,
            monitor_armed: false,
            last_adaptation: None,
            churn: None,
            autoscalers,
            autoscale_armed: false,
            retry_queues: (0..pool_slots)
                .map(|_| VecDeque::with_capacity(retry_capacity))
                .collect(),
            arrival_demand_kbps: vec![0; pool_slots],
            prev_used_kbps: vec![0; pool_slots],
            pending_forecasts: (0..pool_slots).map(|_| VecDeque::new()).collect(),
            retry_parked: FxHashSet::default(),
            retry_counts: FxHashMap::default(),
            connected_count: 0,
            shard: None,
            config,
        }
    }
}

/// Builds the per-pool-slot autoscale controllers for `config`: none
/// when autoscaling is off, one controller on the configured policy for
/// the global pool, or one per regional pool with the policy's
/// `min`/`max`/`step` split by the same region weights as the pool
/// itself — each instance owns its cooldown clocks, so one region's
/// scale action never gates another's.
pub(crate) fn build_autoscalers(config: &SessionConfig, pool_slots: usize) -> Vec<Autoscaler> {
    let Some(policy) = &config.autoscale else {
        return Vec::new();
    };
    let make = |slot_policy: telecast_cdn::AutoscalePolicy| match config.predictive {
        Some(predictive) => Autoscaler::predictive(slot_policy, predictive),
        None => Autoscaler::new(slot_policy),
    };
    if pool_slots == 1 {
        return vec![make(*policy)];
    }
    policy
        .split(config.cdn.pool_scope)
        .into_iter()
        .map(make)
        .collect()
}

fn sample_region(rng: &mut SimRng) -> Region {
    let mut target = rng.unit();
    for &region in &Region::ALL {
        target -= region.weight();
        if target <= 0.0 {
            return region;
        }
    }
    Region::Oceania
}

/// A running 4D TeleCast session.
///
/// ```
/// use telecast::{SessionConfig, TelecastSession};
/// use telecast_media::ViewId;
///
/// let mut session = TelecastSession::builder(SessionConfig::default())
///     .viewers(10)
///     .build();
/// let ids: Vec<_> = session.viewer_ids().to_vec();
/// for v in ids {
///     session.request_join(v, ViewId::new(0))?;
/// }
/// session.run_to_idle();
/// assert!(session.metrics().acceptance_ratio() > 0.9);
/// # Ok::<(), telecast::TelecastError>(())
/// ```
pub struct TelecastSession {
    config: SessionConfig,
    catalog: ViewCatalog,
    scheme: LayerScheme,
    registry: NodeRegistry,
    delays: DelayBackend,
    engine: Engine<SessionEvent>,
    cdn: TenantHandle,
    gsc_node: NodeId,
    lsc_nodes: BTreeMap<Region, NodeId>,
    edge_nodes: BTreeMap<Region, NodeId>,
    /// Group tables, one per scope (region or global).
    scopes: Vec<GroupTable>,
    /// Global per-stream trees used by the Random baseline (no grouping).
    random_trees: FxHashMap<StreamId, StreamTree>,
    /// Receivers of each stream (Random baseline candidate index).
    random_receivers: FxHashMap<StreamId, Vec<NodeId>>,
    /// Per-edge outbound reservations of the Random baseline:
    /// (child, stream) → parent that holds the reservation.
    random_edge_parent: FxHashMap<(NodeId, StreamId), NodeId>,
    viewers: BTreeMap<NodeId, ViewerState>,
    viewer_pool: Vec<NodeId>,
    stream_bw: FxHashMap<StreamId, Bandwidth>,
    stream_fps: FxHashMap<StreamId, u32>,
    metrics: SessionMetrics,
    rng: SimRng,
    adaptation_armed: bool,
    monitor_armed: bool,
    /// `(virtual time, drift epoch)` of the last adaptation pass, used to
    /// skip ticks during which no observed delay can have changed.
    last_adaptation: Option<(SimTime, u64)>,
    /// The continuous-churn runtime, when started.
    churn: Option<crate::churn::ChurnRuntime>,
    /// The elastic-CDN controllers, one per pool slot (empty when
    /// autoscaling is off). Slot 0 is the whole pool under the global
    /// scope; under per-region pools each slot is one region's
    /// controller with its own cooldown clocks.
    autoscalers: Vec<Autoscaler>,
    autoscale_armed: bool,
    /// CDN-rejected joins parked for retry after the next scale-up, in
    /// rejection order — one queue per pool slot, so a retry only
    /// competes for headroom in its own region's pool.
    retry_queues: Vec<VecDeque<(NodeId, ViewId)>>,
    /// Fresh join demand (Kbps of requested view bandwidth) observed per
    /// pool slot since the last autoscale tick — the predictive
    /// controller's inflow-EWMA input.
    arrival_demand_kbps: Vec<u64>,
    /// Each pool slot's reserved Kbps at the previous autoscale tick —
    /// the finite difference behind the predictive controller's
    /// demand-trend EWMA.
    prev_used_kbps: Vec<u64>,
    /// Outstanding demand forecasts per pool slot: `(due, forecast
    /// Mbps)` pairs recorded at each predictive evaluation, scored
    /// against the realised reserved demand once the due time passes
    /// (see `SessionMetrics::forecast_error_by_slot`).
    pending_forecasts: Vec<VecDeque<(SimTime, f64)>>,
    /// Members of the retry queue that are still eligible (a churn dwell
    /// expiry unparks its viewer — the pool owns it again from then on).
    retry_parked: FxHashSet<NodeId>,
    /// Retries spent per viewer since its last admission or dwell
    /// expiry; parking stops at [`JOIN_RETRY_CAP`].
    retry_counts: FxHashMap<NodeId, u32>,
    /// Maintained count of viewers in [`ViewerStatus::Connected`] — the
    /// population the monitor samples without scanning the pool.
    connected_count: usize,
    /// Sharded-mode context, installed when this session is one shard of
    /// a [`crate::ShardedSession`]. `None` on the legacy single-loop
    /// path, which stays behaviourally untouched.
    shard: Option<crate::shard::ShardState>,
    monitor: GscMonitor,
}

impl TelecastSession {
    /// Starts building a session.
    pub fn builder(config: SessionConfig) -> SessionBuilder {
        SessionBuilder {
            config,
            viewer_count: 0,
            home_region: None,
            cdn_handle: None,
        }
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// The canonical view catalog of this session.
    pub fn catalog(&self) -> &ViewCatalog {
        &self.catalog
    }

    /// The delay-layer geometry.
    pub fn scheme(&self) -> &LayerScheme {
        &self.scheme
    }

    /// The provisioned viewer gateways, in creation order.
    pub fn viewer_ids(&self) -> &[NodeId] {
        &self.viewer_pool
    }

    /// The registry of all network nodes (producers, controllers, CDN
    /// edges, viewers).
    pub fn registry(&self) -> &NodeRegistry {
        &self.registry
    }

    /// The delay substrate the session simulates on (dense matrix for
    /// small populations, O(n) coordinates at scale).
    pub fn delay_backend(&self) -> &DelayBackend {
        &self.delays
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> &SessionMetrics {
        &self.metrics
    }

    /// Number of currently connected viewers (maintained, not scanned).
    pub fn connected_viewers(&self) -> usize {
        self.connected_count
    }

    /// Cumulative attach-planner level probes across every stream tree
    /// of the session (grouped scopes plus the Random baseline's global
    /// trees). Each probe is an O(log n) index lookup; scale tests bound
    /// this total to prove no O(n) per-join traversal was reintroduced.
    pub fn attach_probe_total(&self) -> u64 {
        self.tree_counter_total(StreamTree::attach_probes)
    }

    /// Cumulative per-node depth updates from subtree moves across every
    /// stream tree — the *apply* cost of displacements and repositions
    /// (planning is O(log n), but sliding a displaced subtree down a
    /// level costs O(subtree)). Scale tests bound this per placement to
    /// catch workloads that degenerate into chain-displacement storms.
    pub fn depth_shift_total(&self) -> u64 {
        self.tree_counter_total(StreamTree::depth_shift_ops)
    }

    fn tree_counter_total(&self, counter: impl Fn(&StreamTree) -> u64) -> u64 {
        let mut total = 0u64;
        for scope in &self.scopes {
            for (_, group) in scope.iter() {
                for (_, tree) in group.trees() {
                    total += counter(tree);
                }
            }
        }
        for tree in self.random_trees.values() {
            total += counter(tree);
        }
        total
    }

    /// The session's view of the CDN under simulation: a tenant handle
    /// onto the capacity broker (a lone full-quota tenant on the legacy
    /// single-broadcast path).
    pub fn cdn(&self) -> &TenantHandle {
        &self.cdn
    }

    /// The GSC monitoring component (producer metadata, LSC directory).
    pub fn gsc_monitor(&self) -> &GscMonitor {
        &self.monitor
    }

    /// A viewer's state.
    ///
    /// # Errors
    ///
    /// Returns [`TelecastError::UnknownViewer`] for ids not in the pool.
    pub fn viewer(&self, viewer: NodeId) -> Result<&ViewerState, TelecastError> {
        self.viewers
            .get(&viewer)
            .ok_or(TelecastError::UnknownViewer(viewer))
    }

    // ------------------------------------------------------------------
    // Public request API (schedules protocol events)
    // ------------------------------------------------------------------

    /// Requests that `viewer` join the session watching `view`, starting
    /// the Fig. 5 protocol now.
    ///
    /// # Errors
    ///
    /// Fails for unknown ids, views outside the catalog, or double joins.
    pub fn request_join(&mut self, viewer: NodeId, view: ViewId) -> Result<(), TelecastError> {
        self.request_join_at(viewer, view, self.engine.now())
    }

    /// Like [`TelecastSession::request_join`] at an explicit future time.
    ///
    /// # Errors
    ///
    /// Fails for unknown ids, views outside the catalog, or double joins.
    pub fn request_join_at(
        &mut self,
        viewer: NodeId,
        view: ViewId,
        at: SimTime,
    ) -> Result<(), TelecastError> {
        self.request_join_inner(viewer, view, at, true)
    }

    /// The join entry point shared by fresh requests and retry drains.
    /// `fresh` gates the predictive demand observation: a retry re-bids
    /// demand the inflow EWMA already counted at first attempt, so
    /// letting it through would count one viewer up to the retry cap
    /// times — inflating the surge term during ramps and (worse) the
    /// negative trough term while a parked backlog is still draining.
    fn request_join_inner(
        &mut self,
        viewer: NodeId,
        view: ViewId,
        at: SimTime,
        fresh: bool,
    ) -> Result<(), TelecastError> {
        self.check_view(view)?;
        let state = self
            .viewers
            .get(&viewer)
            .ok_or(TelecastError::UnknownViewer(viewer))?;
        if state.status == ViewerStatus::Connected || state.status == ViewerStatus::Joining {
            return Err(TelecastError::AlreadyJoined(viewer));
        }
        let region = state.region;
        // Fresh-demand observation for the predictive controllers: every
        // first-attempt join request bids its view's full CDN demand
        // against its region's pool slot, EWMA-smoothed at the next
        // autoscale tick.
        if fresh
            && (self
                .autoscalers
                .first()
                .map(Autoscaler::is_predictive)
                .unwrap_or(false)
                || self.cdn.fleet_managed())
        {
            let slot = self.cdn.slot_of(region);
            self.arrival_demand_kbps[slot] += self.view_demand_kbps(view);
        }
        // Four protocol legs (Fig. 5) plus LSC processing at each of the
        // three steps: bandwidth allocation, overlay construction, stream
        // subscription.
        let legs = self.leg(viewer, self.gsc_node)
            + self.leg(self.gsc_node, self.lsc_nodes[&region])
            + self.leg(self.lsc_nodes[&region], viewer)
            + self.leg(viewer, self.lsc_nodes[&region])
            + self.config.lsc_processing * 3;
        self.viewers.get_mut(&viewer).expect("checked").status = ViewerStatus::Joining;
        self.engine.schedule_at(
            at + legs,
            SessionEvent::ProcessJoin {
                viewer,
                view,
                requested_at: at,
            },
        );
        self.arm_adaptation();
        Ok(())
    }

    /// Schedules the first §VI adaptation tick and the first GSC
    /// monitoring sample once the session has any activity; subsequent
    /// ticks self-schedule while other events remain pending (so
    /// `run_to_idle` still terminates once the session quiesces).
    fn arm_adaptation(&mut self) {
        if !self.adaptation_armed {
            if let Some(period) = self.config.adaptation_period {
                self.adaptation_armed = true;
                self.engine
                    .schedule_after(period, SessionEvent::PeriodicAdaptation);
            }
        }
        if !self.monitor_armed {
            if let Some(period) = self.config.monitor_period {
                self.monitor_armed = true;
                self.engine
                    .schedule_after(period, SessionEvent::MonitorSample);
            }
        }
        if !self.autoscale_armed {
            if let Some(scaler) = self.autoscalers.first() {
                self.autoscale_armed = true;
                let period = scaler.policy().period;
                self.engine
                    .schedule_after(period, SessionEvent::AutoscaleTick);
            }
        }
    }

    /// One GSC monitoring sample (§III "continuously monitors"): the
    /// connected population and CDN outbound usage at the current virtual
    /// instant, recorded into the session time series. Re-arms itself
    /// while the session stays active.
    fn monitor_sample(&mut self) {
        let now = self.engine.now();
        let pool = self.cdn.outbound();
        let mbps = pool.used().as_mbps_f64();
        let provisioned = pool.total().as_mbps_f64();
        let utilisation = pool.utilisation();
        self.metrics
            .sample_population(now, self.connected_count as f64);
        self.metrics.sample_cdn_usage(now, mbps);
        self.metrics.sample_provisioned(now, provisioned);
        self.metrics.sample_cdn_utilisation(now, utilisation);
        for slot in 0..self.cdn.pool_slots() {
            self.metrics.sample_provisioned_slot(
                slot,
                now,
                self.cdn.pool(slot).total().as_mbps_f64(),
            );
        }
        if let Some(period) = self.config.monitor_period {
            if self.engine.peek_time().is_some() {
                self.engine
                    .schedule_after(period, SessionEvent::MonitorSample);
            } else {
                self.monitor_armed = false;
            }
        }
    }

    /// One elastic-CDN control tick, per pool slot: evaluate the slot's
    /// autoscale policy against its pool at the current instant —
    /// reactively on the utilisation band, or predictively on the
    /// demand forecast (the churn rate-profile's phase one horizon
    /// ahead × an EWMA of the slot's observed fresh arrival demand) —
    /// apply the resulting resize (growing or retiring that region's
    /// edges, accruing its provisioned-capacity meter), and retry the
    /// joins parked on the slot's queue. Re-arms itself while the
    /// session stays active, like the monitor.
    fn autoscale_tick(&mut self) {
        let now = self.engine.now();
        let Some(first) = self.autoscalers.first() else {
            return;
        };
        let period = first.policy().period;
        let predictive = first.is_predictive();
        // The forecast ratio is a property of the session-wide arrival
        // process, shared by every regional controller this tick.
        // The ratio is measured against the rate of ~2 ticks ago — the
        // reference the EWMA-smoothed demand observations effectively
        // reflect — so a burst's onset keeps its elevated forecast until
        // the observed demand catches up with the rate.
        let phase_ratio = match first.predictive_policy() {
            Some(pred) => self
                .churn
                .as_ref()
                .map(|c| {
                    c.spec
                        .rate_profile
                        .forecast_ratio_lagged(now, pred.horizon, period * 2)
                })
                .unwrap_or(1.0),
            None => 1.0,
        };
        let period_secs = period.as_secs_f64();
        let mut scaled = false;
        for slot in 0..self.autoscalers.len() {
            let pool = self.cdn.pool(slot);
            // Score forecasts whose horizon has come due against the
            // demand actually reserved now.
            while let Some(&(due, forecast_mbps)) = self.pending_forecasts[slot].front() {
                if due > now {
                    break;
                }
                self.pending_forecasts[slot].pop_front();
                let error = forecast_mbps - pool.used().as_mbps_f64();
                self.metrics.sample_forecast_error(slot, now, error);
            }
            let scaler = &mut self.autoscalers[slot];
            let decision = if predictive {
                let fresh_kbps = std::mem::replace(&mut self.arrival_demand_kbps[slot], 0);
                let used_kbps = pool.used().as_kbps();
                let prev_kbps = std::mem::replace(&mut self.prev_used_kbps[slot], used_kbps);
                let inflow = fresh_kbps as f64 / 1_000.0 / period_secs;
                let trend = (used_kbps as f64 - prev_kbps as f64) / 1_000.0 / period_secs;
                scaler.observe_demand(inflow, trend);
                let decision = scaler.evaluate_predictive(now, &pool, phase_ratio);
                if let Some(forecast) = scaler.last_forecast() {
                    self.pending_forecasts[slot].push_back(forecast);
                }
                decision
            } else {
                scaler.evaluate(now, &pool)
            };
            if let Some(decision) = decision {
                let actual = self.cdn.apply_scale_slot(slot, decision.to, now);
                self.metrics
                    .sample_provisioned_slot(slot, now, actual.as_mbps_f64());
                scaled = true;
                match decision.direction {
                    ScaleDirection::Up => self.metrics.autoscale_ups.incr(),
                    ScaleDirection::Down => self.metrics.autoscale_downs.incr(),
                }
            }
        }
        // One aggregate sample per tick, after every slot has moved —
        // sampling inside the loop would emit several points with the
        // same timestamp (one per scaled region).
        if scaled {
            self.metrics
                .sample_provisioned(now, self.cdn.outbound().total().as_mbps_f64());
        }
        // Retry parked joins up to each pool's current headroom — after a
        // scale-up that immediately admits the front of the queue, and as
        // a trickle on every later tick while headroom remains (so the
        // tail keeps draining once the pool has caught up with demand).
        self.drain_retry_queues();
        if self.engine.peek_time().is_some() {
            self.engine
                .schedule_after(period, SessionEvent::AutoscaleTick);
        } else {
            self.autoscale_armed = false;
        }
    }

    /// Retries parked CDN-rejected joins at the current instant, FIFO
    /// per pool slot, budgeted by that pool's current headroom: each
    /// retry is charged the full CDN demand of its view, and draining
    /// stops once the headroom is spent (the rest stays parked for the
    /// next tick). Without the budget a scale-up would re-flood the pool
    /// with every parked join at once — a thundering herd whose
    /// re-rejections dwarf the admissions. A parked viewer is skipped
    /// when its state moved on since the rejection — a churn dwell
    /// expiry returned it to the pool (unparked), or a scripted re-join
    /// already changed its status.
    fn drain_retry_queues(&mut self) {
        for slot in 0..self.retry_queues.len() {
            if self.retry_queues[slot].is_empty() {
                continue;
            }
            let budget_kbps = self.cdn.pool(slot).available().as_kbps();
            self.drain_retry_slot(slot, budget_kbps);
        }
    }

    /// Drains one slot's retry queue under an explicit bandwidth budget
    /// — the session-local path hands the pool's whole headroom here; a
    /// fleet barrier hands each tenant its arbitrated share instead.
    fn drain_retry_slot(&mut self, slot: usize, mut budget_kbps: u64) {
        let now = self.engine.now();
        while let Some((viewer, view)) = self.retry_queues[slot].pop_front() {
            if !self.retry_parked.contains(&viewer) {
                continue; // unparked since; drop the stale entry
            }
            // Status check before the budget check: a no-longer-
            // Rejected entry costs nothing and must not stall the
            // queue behind it.
            let rejected = self
                .viewers
                .get(&viewer)
                .map(|v| v.status == ViewerStatus::Rejected)
                .unwrap_or(false);
            if !rejected {
                self.retry_parked.remove(&viewer);
                continue;
            }
            let demand = self.view_demand_kbps(view);
            if budget_kbps < demand {
                self.retry_queues[slot].push_front((viewer, view));
                break;
            }
            self.retry_parked.remove(&viewer);
            budget_kbps -= demand;
            *self.retry_counts.entry(viewer).or_insert(0) += 1;
            self.metrics.join_retries.incr();
            let _ = self.request_join_inner(viewer, view, now, false);
        }
    }

    /// Worst-case CDN demand of one view, in Kbps: every stream served
    /// from the pool (the conservative budget unit for retry draining —
    /// P2P slots can only make the actual cost lower).
    fn view_demand_kbps(&self, view: ViewId) -> u64 {
        self.catalog
            .view(view)
            .streams()
            .map(|sid| self.stream_bw[&sid].as_kbps())
            .sum()
    }

    /// Parks a CDN-rejected foreground join for retry after the next
    /// scale-up, on the queue of the viewer's region's pool slot. No-op
    /// without an autoscaler (unless a fleet barrier drains the queue
    /// instead), when already parked, or once the viewer exhausted its
    /// [`JOIN_RETRY_CAP`].
    fn park_rejected(&mut self, viewer: NodeId, view: ViewId) {
        if self.autoscalers.is_empty() && !self.cdn.fleet_managed() {
            return;
        }
        if self.retry_counts.get(&viewer).copied().unwrap_or(0) >= JOIN_RETRY_CAP {
            return;
        }
        if self.retry_parked.insert(viewer) {
            let slot = self.cdn.slot_of(self.viewers[&viewer].region);
            self.retry_queues[slot].push_back((viewer, view));
            self.metrics.peak_retry_queue = self
                .metrics
                .peak_retry_queue
                .max(self.retry_parked.len() as u64);
        }
    }

    /// One §VI delay-layer adaptation pass, incremental: delays only move
    /// when the trace crosses a 15-minute drift-epoch boundary, so a tick
    /// inside the same epoch as the previous pass is a no-op, and on a
    /// boundary only the viewers whose *observed* delays (the one-way
    /// legs from their viewer parents) actually changed are resynced —
    /// instead of every connected viewer on every tick. The first pass
    /// after arming still walks everyone, since joins may have computed
    /// their layers in earlier epochs.
    fn periodic_adaptation(&mut self) {
        let now = self.engine.now();
        let epoch = telecast_net::epoch_index(now);
        let prev = self.last_adaptation;
        self.last_adaptation = Some((now, epoch));
        let seeds: Vec<(NodeId, ViewId, Region)> = match prev {
            Some((_, prev_epoch)) if prev_epoch == epoch => Vec::new(),
            Some((prev_at, _)) => self
                .viewers
                .values()
                .filter(|v| v.status == ViewerStatus::Connected)
                .filter_map(|v| v.view.map(|view| (v, view)))
                .filter(|(v, _)| {
                    v.subs.values().any(|sub| match sub.parent {
                        TreeParent::Viewer(p) => {
                            self.delays.one_way(now, p, v.node)
                                != self.delays.one_way(prev_at, p, v.node)
                        }
                        TreeParent::Cdn => false,
                    })
                })
                .map(|(v, view)| (v.node, view, v.region))
                .collect(),
            None => self
                .viewers
                .values()
                .filter(|v| v.status == ViewerStatus::Connected)
                .filter_map(|v| v.view.map(|view| (v.node, view, v.region)))
                .collect(),
        };
        for (viewer, view, region) in seeds {
            let scope = self.scope_of(region);
            self.propagate_resync(view, scope, vec![viewer]);
        }
        // Keep ticking only while the session is otherwise active.
        if let Some(period) = self.config.adaptation_period {
            if self.engine.peek_time().is_some() {
                self.engine
                    .schedule_after(period, SessionEvent::PeriodicAdaptation);
            } else {
                self.adaptation_armed = false;
            }
        }
    }

    /// Requests a view change for a connected viewer.
    ///
    /// # Errors
    ///
    /// Fails for unknown ids, views outside the catalog, or viewers that
    /// are not connected.
    pub fn request_view_change(
        &mut self,
        viewer: NodeId,
        view: ViewId,
    ) -> Result<(), TelecastError> {
        self.check_view(view)?;
        let state = self
            .viewers
            .get(&viewer)
            .ok_or(TelecastError::UnknownViewer(viewer))?;
        if state.status != ViewerStatus::Connected {
            return Err(TelecastError::NotJoined(viewer));
        }
        let now = self.engine.now();
        let legs = self.leg(viewer, self.lsc_nodes[&state.region]) + self.config.lsc_processing;
        self.engine.schedule_at(
            now + legs,
            SessionEvent::ProcessViewChange {
                viewer,
                view,
                requested_at: now,
            },
        );
        Ok(())
    }

    /// Requests a graceful departure of a connected viewer.
    ///
    /// # Errors
    ///
    /// Fails for unknown ids or viewers that are not connected.
    pub fn request_depart(&mut self, viewer: NodeId) -> Result<(), TelecastError> {
        let state = self
            .viewers
            .get(&viewer)
            .ok_or(TelecastError::UnknownViewer(viewer))?;
        if state.status != ViewerStatus::Connected {
            return Err(TelecastError::NotJoined(viewer));
        }
        let legs = self.leg(viewer, self.lsc_nodes[&state.region]);
        self.engine
            .schedule_after(legs, SessionEvent::ProcessDepart { viewer });
        Ok(())
    }

    /// Simulates an abrupt viewer failure: no protocol legs; the overlay
    /// discovers the hole immediately and recovers victims the same way a
    /// departure does (§VI).
    ///
    /// # Errors
    ///
    /// Fails for unknown ids or viewers that are not connected.
    pub fn fail_viewer(&mut self, viewer: NodeId) -> Result<(), TelecastError> {
        let state = self
            .viewers
            .get(&viewer)
            .ok_or(TelecastError::UnknownViewer(viewer))?;
        if state.status != ViewerStatus::Connected {
            return Err(TelecastError::NotJoined(viewer));
        }
        self.process_depart(viewer);
        Ok(())
    }

    /// Starts the continuous-churn runtime: `prefill` viewers join at the
    /// current instant (each with a sampled dwell), then Poisson arrivals
    /// admit pool viewers until `horizon`. Every admitted viewer leaves
    /// at the end of its lognormal dwell — gracefully, or abruptly for
    /// the spec's fail fraction — and returns to the pool for readmission,
    /// so the session sustains the spec's steady-state population
    /// indefinitely. All draws come from a dedicated fork of the master
    /// seed; two sessions with equal config, spec and horizon replay the
    /// identical membership timeline.
    ///
    /// Use [`TelecastSession::run_until`] with the same horizon to drive
    /// the run: dwell timers beyond the horizon stay pending, so
    /// [`TelecastSession::run_to_idle`] would additionally play out the
    /// audience draining away.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid or a churn runtime is already
    /// installed.
    pub fn start_churn(
        &mut self,
        spec: telecast_media::ChurnSpec,
        horizon: SimTime,
        prefill: usize,
    ) {
        if let Err(msg) = spec.validate() {
            panic!("invalid churn spec: {msg}");
        }
        assert!(self.churn.is_none(), "churn runtime already started");
        let rng = self.rng.fork(0xC0_4112); // dedicated churn stream
        let available: Vec<NodeId> = self
            .viewers
            .values()
            .filter(|v| matches!(v.status, ViewerStatus::Idle | ViewerStatus::Rejected))
            .map(|v| v.node)
            .collect();
        self.churn = Some(crate::churn::ChurnRuntime {
            spec,
            horizon,
            rng,
            available,
        });
        for _ in 0..prefill {
            if !self.churn_admit_one() {
                break;
            }
        }
        let now = self.engine.now();
        if now < horizon {
            let next = {
                let churn = self.churn.as_mut().expect("just installed");
                churn.spec.sample_next_arrival(now, horizon, &mut churn.rng)
            };
            if let Some(at) = next {
                self.engine.schedule_at(at, SessionEvent::ChurnArrival);
            }
        }
        self.arm_adaptation();
    }

    /// Whether a churn runtime is installed.
    pub fn churn_active(&self) -> bool {
        self.churn.is_some()
    }

    /// The viewers currently available to the churn runtime for
    /// (re)admission, when one is installed — introspection for the
    /// pool-conservation invariants (a viewer being both here and
    /// connected means its graceful departure is still in flight).
    pub fn churn_pool(&self) -> Option<&[NodeId]> {
        self.churn.as_ref().map(|c| c.available.as_slice())
    }

    /// The elastic-CDN controller of the first pool slot, when
    /// configured (the whole pool under the global scope).
    pub fn autoscaler(&self) -> Option<&Autoscaler> {
        self.autoscalers.first()
    }

    /// The elastic-CDN controllers, one per pool slot (empty when
    /// autoscaling is off).
    pub fn autoscalers(&self) -> &[Autoscaler] {
        &self.autoscalers
    }

    /// Number of CDN-rejected joins currently parked for retry after
    /// the next scale-up, across every pool slot's queue.
    pub fn retry_queue_len(&self) -> usize {
        self.retry_queues
            .iter()
            .flatten()
            .filter(|(v, _)| self.retry_parked.contains(v))
            .count()
    }

    /// Admits one churn-pool viewer at the current instant: joins it on a
    /// sampled view and schedules its leave at the end of a sampled
    /// dwell. Probes up to [`crate::churn::ARRIVAL_PROBE_CAP`] pool
    /// candidates (a candidate can be stale while its graceful departure
    /// is still in flight). Returns whether a join was issued.
    fn churn_admit_one(&mut self) -> bool {
        let now = self.engine.now();
        let catalog_len = self.catalog.len();
        for _ in 0..crate::churn::ARRIVAL_PROBE_CAP {
            let (candidate, view, dwell, fail) = {
                let churn = self.churn.as_mut().expect("churn runtime installed");
                let Some(candidate) = churn.pop_candidate() else {
                    return false;
                };
                (
                    candidate,
                    churn.spec.view_choice.sample(catalog_len, &mut churn.rng),
                    churn.spec.sample_dwell(&mut churn.rng),
                    churn.spec.sample_fail(&mut churn.rng),
                )
            };
            match self.request_join_at(candidate, view, now) {
                Ok(()) => {
                    self.metrics.churn_arrivals.incr();
                    self.engine.schedule_after(
                        dwell,
                        SessionEvent::ChurnLeave {
                            viewer: candidate,
                            fail,
                        },
                    );
                    return true;
                }
                Err(_) => {
                    // Still connected (departure in flight): back into the
                    // pool, try another candidate.
                    self.churn
                        .as_mut()
                        .expect("churn runtime installed")
                        .available
                        .push(candidate);
                }
            }
        }
        false
    }

    /// One `ChurnArrival` event: self-schedule the next arrival while
    /// before the horizon, then admit a pool viewer.
    fn churn_arrival(&mut self) {
        let now = self.engine.now();
        let Some(churn) = self.churn.as_mut() else {
            return;
        };
        if now < churn.horizon {
            let horizon = churn.horizon;
            if let Some(at) = churn.spec.sample_next_arrival(now, horizon, &mut churn.rng) {
                self.engine.schedule_at(at, SessionEvent::ChurnArrival);
            }
        }
        self.churn_admit_one();
    }

    /// One `ChurnLeave` event: the viewer's dwell ended. Connected
    /// viewers depart gracefully or fail abruptly; either way (and also
    /// for viewers whose join was rejected) the viewer returns to the
    /// pool for readmission.
    fn churn_leave(&mut self, viewer: NodeId, fail: bool) {
        // A join in flight (a drained retry, or a dwell shorter than the
        // join legs): deciding now would either depart a viewer that is
        // not connected yet or push it back to the pool while the join
        // still commits — a permanently-connected leak either way. The
        // join always resolves, so re-poll shortly after.
        if self
            .viewers
            .get(&viewer)
            .map(|v| v.status == ViewerStatus::Joining)
            .unwrap_or(false)
        {
            self.engine.schedule_after(
                SimDuration::from_secs(1),
                SessionEvent::ChurnLeave { viewer, fail },
            );
            return;
        }
        let connected = self
            .viewers
            .get(&viewer)
            .map(|v| v.status == ViewerStatus::Connected)
            .unwrap_or(false);
        if connected {
            if fail {
                self.metrics.churn_failures.incr();
                let _ = self.fail_viewer(viewer);
            } else {
                self.metrics.churn_departures.incr();
                let _ = self.request_depart(viewer);
            }
        }
        if let Some(churn) = self.churn.as_mut() {
            churn.available.push(viewer);
        }
        // The pool owns the viewer again: a pending retry would race the
        // next churn admission, so the dwell expiry unparks it (and its
        // retry budget resets with the fresh dwell).
        self.retry_parked.remove(&viewer);
        self.retry_counts.remove(&viewer);
    }

    /// Runs the protocol engine until no events remain.
    pub fn run_to_idle(&mut self) {
        while let Some(fired) = self.engine.pop() {
            self.dispatch(fired.payload);
        }
        self.sync_queue_peaks();
    }

    /// Runs the protocol engine up to (and including) `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(fired) = self.engine.pop_until(deadline) {
            self.dispatch(fired.payload);
        }
        self.sync_queue_peaks();
    }

    /// Folds the engine's high-water mark into the metrics (the retry
    /// peak is tracked at park time).
    fn sync_queue_peaks(&mut self) {
        self.metrics.peak_event_queue = self
            .metrics
            .peak_event_queue
            .max(self.engine.peak_pending() as u64);
    }

    /// Applies a scripted workload, mapping workload-local viewer indexes
    /// onto this session's pool, then runs to idle.
    ///
    /// # Panics
    ///
    /// Panics if the workload references more viewers than the pool holds.
    pub fn run_workload(&mut self, workload: &telecast_media::ViewerWorkload) {
        assert!(
            workload.viewer_count() <= self.viewer_pool.len(),
            "workload needs {} viewers but the pool has {}",
            workload.viewer_count(),
            self.viewer_pool.len()
        );
        let events: Vec<_> = workload.events().to_vec();
        for (at, ev) in events {
            // Drain everything scheduled before this workload instant so
            // request_* sees up-to-date state.
            self.run_until(at);
            match ev {
                telecast_media::WorkloadEvent::Join { viewer, view } => {
                    let id = self.viewer_pool[viewer];
                    let _ = self.request_join_at(id, view, at);
                }
                telecast_media::WorkloadEvent::ViewChange { viewer, view } => {
                    let id = self.viewer_pool[viewer];
                    let _ = self.request_view_change(id, view);
                }
                telecast_media::WorkloadEvent::Depart { viewer } => {
                    let id = self.viewer_pool[viewer];
                    let _ = self.request_depart(id);
                }
            }
        }
        self.run_to_idle();
    }

    // ------------------------------------------------------------------
    // Snapshots (figure inputs)
    // ------------------------------------------------------------------

    /// Maximum delay layer per connected viewer with at least one
    /// subscription (Fig. 14(a)).
    pub fn layer_snapshot(&self) -> Vec<u64> {
        self.viewers
            .values()
            .filter(|v| v.status == ViewerStatus::Connected)
            .filter_map(|v| v.max_layer())
            .collect()
    }

    /// Number of received streams per viewer that attempted a join,
    /// including 0 entries for rejected viewers (Fig. 14(b)).
    pub fn streams_per_viewer(&self) -> Vec<usize> {
        self.viewers
            .values()
            .filter_map(|v| match v.status {
                ViewerStatus::Connected => Some(v.stream_count() + v.temp_leases.len()),
                ViewerStatus::Rejected => Some(0),
                _ => None,
            })
            .collect()
    }

    /// Fraction of currently-served streams whose upstream is the CDN
    /// (Fig. 13(b)).
    pub fn cdn_stream_fraction(&self) -> f64 {
        let mut cdn = 0usize;
        let mut total = 0usize;
        for v in self.viewers.values() {
            if v.status != ViewerStatus::Connected {
                continue;
            }
            for sub in v.subs.values() {
                total += 1;
                if sub.parent == TreeParent::Cdn {
                    cdn += 1;
                }
            }
            cdn += v.temp_leases.len();
            total += v.temp_leases.len();
        }
        if total == 0 {
            0.0
        } else {
            cdn as f64 / total as f64
        }
    }

    /// Fraction of delivered stream bandwidth that is *effective*, i.e.
    /// renderable within the `dbuff` sync bound at its viewer (§I's
    /// "effective resource utilization"). With layering enabled this is
    /// 1.0 by construction; the no-layering ablation shows the loss.
    pub fn effective_bandwidth_ratio(&self) -> f64 {
        let mut delivered = 0u64;
        let mut effective = 0u64;
        for v in self.viewers.values() {
            if v.status != ViewerStatus::Connected || v.subs.is_empty() {
                continue;
            }
            let slowest = v
                .subs
                .values()
                .map(|s| s.e2e)
                .max()
                .expect("non-empty subs");
            for sub in v.subs.values() {
                delivered += sub.bitrate_kbps;
                // Renderable with the slowest stream: within dbuff of it.
                if slowest - sub.e2e <= self.config.dbuff {
                    effective += sub.bitrate_kbps;
                }
            }
        }
        if delivered == 0 {
            1.0
        } else {
            effective as f64 / delivered as f64
        }
    }

    /// Depths (hops below the CDN) of `viewer` in each stream tree it is
    /// subscribed to; empty for disconnected viewers. The Overlay
    /// Property says higher-outbound viewers sit closer to the root.
    pub fn viewer_tree_depths(&self, viewer: NodeId) -> Vec<usize> {
        let Some(state) = self.viewers.get(&viewer) else {
            return Vec::new();
        };
        if state.status != ViewerStatus::Connected {
            return Vec::new();
        }
        let is_random = matches!(self.config.placement, PlacementStrategy::Random { .. });
        let scope = self.scope_of(state.region);
        state
            .subs
            .keys()
            .filter_map(|&sid| {
                if is_random {
                    self.random_trees.get(&sid).and_then(|t| t.depth_of(viewer))
                } else {
                    state.view.and_then(|v| {
                        self.scopes[scope]
                            .group(v)
                            .and_then(|g| g.tree(sid))
                            .and_then(|t| t.depth_of(viewer))
                    })
                }
            })
            .collect()
    }

    /// Registered membership of `view`'s group summed over every scope,
    /// or `None` once no scope holds a group for the view any more (the
    /// prune pass retired them all). Random placement keeps no groups,
    /// so this is always `None` there.
    pub fn view_group_population(&self, view: ViewId) -> Option<usize> {
        let mut any = false;
        let mut total = 0usize;
        for scope in &self.scopes {
            if let Some(group) = scope.group(view) {
                any = true;
                total += group.member_count();
            }
        }
        any.then_some(total)
    }

    /// Occupied tree slots of `view`'s group summed over every scope
    /// (zero once the view's groups are drained or retired).
    pub fn view_tree_population(&self, view: ViewId) -> usize {
        self.scopes
            .iter()
            .filter_map(|scope| scope.group(view))
            .map(|group| group.tree_population())
            .sum()
    }

    /// Mean tree depth across all active stream trees (ablation metric).
    pub fn mean_tree_depth(&self) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        let mut record = |tree: &StreamTree| {
            if !tree.is_empty() {
                total += tree.metrics().mean_depth;
                count += 1;
            }
        };
        for scope in &self.scopes {
            for (_, group) in scope.iter() {
                for (_, tree) in group.trees() {
                    record(tree);
                }
            }
        }
        for tree in self.random_trees.values() {
            record(tree);
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }

    // ------------------------------------------------------------------
    // Event dispatch
    // ------------------------------------------------------------------

    fn dispatch(&mut self, event: SessionEvent) {
        match event {
            SessionEvent::ProcessJoin {
                viewer,
                view,
                requested_at,
            } => self.process_join(viewer, view, requested_at, false),
            SessionEvent::CompleteJoin {
                viewer,
                requested_at,
            } => {
                let delay = self.engine.now() - requested_at;
                let _ = viewer;
                self.metrics
                    .join_delays_ms
                    .record(delay.as_micros() as f64 / 1_000.0);
            }
            SessionEvent::ProcessViewChange {
                viewer,
                view,
                requested_at,
            } => self.process_view_change(viewer, view, requested_at),
            SessionEvent::BackgroundJoin { viewer, view } => {
                self.process_join(viewer, view, self.engine.now(), true);
            }
            SessionEvent::ProcessDepart { viewer } => self.process_depart(viewer),
            SessionEvent::RepositionVictim { viewer, stream } => {
                self.reposition_victim(viewer, stream);
            }
            SessionEvent::PeriodicAdaptation => self.periodic_adaptation(),
            SessionEvent::ChurnArrival => self.churn_arrival(),
            SessionEvent::ChurnLeave { viewer, fail } => self.churn_leave(viewer, fail),
            SessionEvent::MonitorSample => self.monitor_sample(),
            SessionEvent::AutoscaleTick => self.autoscale_tick(),
        }
        let mbps = self.cdn.outbound().used().as_mbps_f64();
        self.metrics.sample_cdn_usage(self.engine.now(), mbps);
        #[cfg(debug_assertions)]
        self.debug_check_leases(&event);
    }

    /// Debug-build invariants: every CDN-parented subscription of a
    /// connected viewer holds a lease, and inbound reservations cover
    /// exactly the subscribed bitrates.
    #[cfg(debug_assertions)]
    fn debug_check_leases(&self, event: &SessionEvent) {
        for (id, v) in &self.viewers {
            if v.status != ViewerStatus::Connected {
                continue;
            }
            for (sid, sub) in &v.subs {
                if sub.parent == TreeParent::Cdn && sub.lease.is_none() {
                    panic!("lease invariant broken for viewer {id} stream {sid} after {event:?}");
                }
            }
            let subscribed: u64 = v.subs.values().map(|s| s.bitrate_kbps).sum();
            if v.ports.inbound.used().as_kbps() != subscribed {
                panic!(
                    "inbound accounting broken for viewer {id}: reserved {} vs subscribed {} after {event:?}",
                    v.ports.inbound.used(),
                    Bandwidth::from_kbps(subscribed)
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Join
    // ------------------------------------------------------------------

    fn process_join(
        &mut self,
        viewer: NodeId,
        view: ViewId,
        requested_at: SimTime,
        background: bool,
    ) {
        {
            // A scripted departure may have raced this event.
            let v = &self.viewers[&viewer];
            let expected = if background {
                v.status == ViewerStatus::Connected && v.view == Some(view)
            } else {
                v.status == ViewerStatus::Joining
            };
            if !expected {
                return;
            }
        }
        let (region, inbound_total, outbound_total) = {
            let v = &self.viewers[&viewer];
            (v.region, v.ports.inbound.total(), v.ports.outbound.total())
        };
        let streams = self.catalog.view(view).streams_by_priority();
        self.metrics.requested_streams.add(streams.len() as u64);

        let scope = self.scope_of(region);
        if !matches!(self.config.placement, PlacementStrategy::Random { .. }) {
            let all: Vec<StreamId> = self.catalog.view(view).streams().collect();
            self.scopes[scope].group_for(view, all);
        }

        // Inbound allocation (§IV-B1) with the P2P/CDN supply condition.
        let accepted = {
            let group = self.scopes[scope].group(view);
            let cdn = &self.cdn;
            let placement = self.config.placement;
            let plan = allocate_inbound(&streams, inbound_total, |s, bw| match placement {
                PlacementStrategy::Random { .. } => true,
                _ => {
                    let tree_has = group
                        .and_then(|g| g.tree(s))
                        .map(|t| t.has_free_slot())
                        .unwrap_or(false);
                    // Region-scoped supply: under per-region pools the
                    // joiner can only draw from its own region's share.
                    tree_has || cdn.can_serve_in(bw, region)
                }
            });
            plan.accepted
        };

        if !covers_all_sites(&accepted, self.config.sites.len()) {
            self.finish_rejected(viewer, view, background);
            return;
        }

        let out_plan = allocate_outbound(&accepted, outbound_total, self.config.outbound_policy);

        // Place each accepted stream (§IV-B2). Failures drop the stream;
        // a coverage-breaking failure rolls the whole join back.
        let mut placements: Vec<(PrioritizedStream, TreeParent)> = Vec::new();
        let mut displaced: Vec<NodeId> = Vec::new();
        for s in &accepted {
            let bw = self.stream_bw[&s.stream];
            let deg = out_plan.out_degree(s.stream);
            if let Some((parent, disp)) = self.place_stream(
                viewer,
                view,
                scope,
                region,
                s.stream,
                bw,
                deg,
                outbound_total,
            ) {
                if let Some(d) = disp {
                    self.metrics.displacements.incr();
                    // Displacing a direct CDN child takes over its
                    // root slot: the CDN link count is unchanged, so
                    // the lease transfers to the joiner.
                    if parent == TreeParent::Cdn {
                        let inherited = self
                            .viewers
                            .get_mut(&d)
                            .and_then(|dv| dv.subs.get_mut(&s.stream))
                            .and_then(|ds| {
                                ds.parent = TreeParent::Viewer(viewer);
                                ds.lease.take()
                            });
                        let lease = match inherited {
                            Some(lease) => Some(lease),
                            // Displaced node was mid-recovery without
                            // a lease: acquire a fresh one.
                            None => self.cdn.serve(s.stream, bw, region).ok(),
                        };
                        match lease {
                            Some(lease) => self
                                .viewers
                                .get_mut(&viewer)
                                .expect("viewer exists")
                                .stash_cdn_lease(s.stream, lease),
                            None => {
                                // No lease available at all: undo this
                                // placement; the stream is unserved.
                                displaced.push(d);
                                self.undo_placement(viewer, view, scope, s.stream, parent);
                                continue;
                            }
                        }
                    }
                    displaced.push(d);
                }
                placements.push((*s, parent));
            }
        }

        let placed: Vec<PrioritizedStream> = placements.iter().map(|(s, _)| *s).collect();
        if !covers_all_sites(&placed, self.config.sites.len()) {
            // Roll back: remove the fresh placements (no children yet).
            for (s, parent) in &placements {
                self.undo_placement(viewer, view, scope, s.stream, *parent);
            }
            self.finish_rejected(viewer, view, background);
            return;
        }

        // Port reservations: inbound for every placed stream, outbound for
        // the granted slots.
        {
            let inbound_used: Bandwidth = placed
                .iter()
                .map(|s| Bandwidth::from_kbps(s.bitrate_kbps))
                .sum();
            let outbound_used = out_plan.outbound_used;
            let v = self.viewers.get_mut(&viewer).expect("viewer exists");
            v.ports
                .inbound
                .reserve(inbound_used)
                .expect("inbound allocation fits by construction");
            if !matches!(self.config.placement, PlacementStrategy::Random { .. }) {
                v.ports
                    .outbound
                    .reserve(outbound_used)
                    .expect("outbound allocation fits by construction");
            }
            for (s, deg) in &out_plan.slots {
                v.out_degrees.insert(*s, *deg);
            }
        }

        // Delay layers (§V): Eq. 1 per stream, then layer push-down.
        let mut subs: Vec<(StreamId, StreamSub)> = Vec::new();
        for (s, parent) in &placements {
            let base_e2e = self.path_delay(viewer, s.stream, *parent);
            let layer = self.scheme.layer_of_delay(base_e2e);
            subs.push((
                s.stream,
                StreamSub {
                    parent: *parent,
                    lease: None, // CDN leases were recorded in place_stream
                    base_e2e,
                    e2e: base_e2e,
                    layer,
                    pushed_down: false,
                    bitrate_kbps: s.bitrate_kbps,
                },
            ));
        }
        // Layering loop: push-down + residual alignment, re-provisioning
        // layer violators from the CDN per §VI ("if the parent is another
        // viewer, then LSC first tries to provision the stream from the
        // CDN") before giving a stream up. Each pass either stabilises or
        // removes/reroutes at least one stream, so it terminates.
        let mut dropped: Vec<StreamId> = Vec::new();
        if self.config.layering_enabled {
            loop {
                // Recompute layers from the current bases.
                for (_, sub) in subs.iter_mut() {
                    sub.layer = self.scheme.layer_of_delay(sub.base_e2e);
                    sub.e2e = sub.base_e2e;
                    sub.pushed_down = false;
                }
                let mut layers: Vec<u64> = subs.iter().map(|(_, s)| s.layer).collect();
                let changed = self.scheme.push_down(&mut layers);
                self.metrics.subscription_messages.add(changed as u64);
                for ((_, sub), &layer) in subs.iter_mut().zip(layers.iter()) {
                    if layer != sub.layer {
                        sub.layer = layer;
                        sub.pushed_down = true;
                        sub.e2e = self.scheme.delay_at_top_of(layer);
                    }
                }
                // Residual in-layer skew: a κ layer spread bounds delays
                // by (κ+1)τ, not κτ; a final delayed receive aligns the
                // fast streams so the dbuff guarantee of Layer Property 2
                // holds exactly (§III-B's "delayed receive for the
                // streams with lower end-to-end delay").
                if let Some(deepest) = subs.iter().map(|(_, s)| s.e2e).max() {
                    for (_, sub) in subs.iter_mut() {
                        if deepest - sub.e2e > self.config.dbuff {
                            sub.e2e = deepest - self.config.dbuff;
                            sub.layer = self.scheme.layer_of_delay(sub.e2e);
                            sub.pushed_down = true;
                        }
                    }
                }
                let Some(offender) = subs
                    .iter()
                    .position(|(_, sub)| sub.layer > self.scheme.max_layer())
                else {
                    break;
                };
                let (sid, sub) = subs[offender];
                let bw = Bandwidth::from_kbps(sub.bitrate_kbps);
                let rerouted = match sub.parent {
                    TreeParent::Viewer(_) => match self.cdn.serve(sid, bw, region) {
                        Ok(lease) => {
                            // Move to the CDN root, keeping any displaced
                            // child attached beneath us.
                            if let Some(tree) = self.scopes[scope]
                                .group_mut(view)
                                .and_then(|g| g.tree_mut(sid))
                            {
                                tree.reparent_to_cdn(viewer);
                            }
                            let entry = &mut subs[offender].1;
                            entry.parent = TreeParent::Cdn;
                            entry.base_e2e = self.scheme.delta();
                            self.viewers
                                .get_mut(&viewer)
                                .expect("viewer exists")
                                .stash_cdn_lease(sid, lease);
                            true
                        }
                        Err(_) => false,
                    },
                    TreeParent::Cdn => false,
                };
                if !rerouted {
                    self.metrics.layer_drops.incr();
                    self.undo_placement(viewer, view, scope, sid, sub.parent);
                    let v = self.viewers.get_mut(&viewer).expect("viewer exists");
                    v.ports.inbound.release(bw);
                    subs.remove(offender);
                    dropped.push(sid);
                }
            }
        }
        let _ = &dropped;
        let kept: Vec<(StreamId, StreamSub)> = subs;
        let kept_streams: Vec<PrioritizedStream> = placed
            .iter()
            .filter(|p| kept.iter().any(|(sid, _)| *sid == p.stream))
            .copied()
            .collect();
        if !covers_all_sites(&kept_streams, self.config.sites.len()) {
            for (sid, sub) in &kept {
                self.undo_placement(viewer, view, scope, *sid, sub.parent);
                let v = self.viewers.get_mut(&viewer).expect("viewer exists");
                v.ports
                    .inbound
                    .release(Bandwidth::from_kbps(sub.bitrate_kbps));
            }
            // Release the outbound reservation made above (Random mode
            // never reserved; its parents' ports hold per-edge amounts).
            let v = self.viewers.get_mut(&viewer).expect("viewer exists");
            if !matches!(self.config.placement, PlacementStrategy::Random { .. })
                && !out_plan.outbound_used.is_zero()
            {
                v.ports.outbound.release(out_plan.outbound_used);
            }
            v.out_degrees.clear();
            self.finish_rejected(viewer, view, background);
            return;
        }

        // Commit.
        self.metrics.accepted_streams.add(kept.len() as u64);
        self.metrics.admitted_viewers.incr();
        // Admitted: the retry budget resets and any parked entry becomes
        // stale (the queue drops it lazily once unparked).
        self.retry_counts.remove(&viewer);
        self.retry_parked.remove(&viewer);
        self.metrics.subscription_messages.add(kept.len() as u64); // Subscription-Start to each parent
        let mut parent_updates: Vec<(NodeId, StreamId, SubscriptionPoint)> = Vec::new();
        {
            let v = self.viewers.get_mut(&viewer).expect("viewer exists");
            if v.status != ViewerStatus::Connected {
                self.connected_count += 1;
            }
            v.status = ViewerStatus::Connected;
            v.view = Some(view);
            for (sid, mut sub) in kept {
                // Reattach the lease handle recorded during placement.
                if sub.parent == TreeParent::Cdn {
                    sub.lease = v.temp_cdn_lease_take(sid);
                }
                if let TreeParent::Viewer(p) = sub.parent {
                    let point = if sub.pushed_down {
                        SubscriptionPoint::Frame(FrameNumber::ZERO) // fixed below
                    } else {
                        SubscriptionPoint::Live
                    };
                    parent_updates.push((p, sid, point));
                }
                v.subs.insert(sid, sub);
            }
        }
        // Register group membership (the group exists: created above for
        // every non-Random placement). The prune pass reads this to spot
        // abandoned views.
        if !matches!(self.config.placement, PlacementStrategy::Random { .. }) {
            self.scopes[scope].join(viewer, view);
        }
        // Fill in Eq. 2 subscription points and update parent routing
        // tables (Fig. 6 protocol).
        for (p, sid, point) in parent_updates {
            let point = match point {
                SubscriptionPoint::Live => SubscriptionPoint::Live,
                SubscriptionPoint::Frame(_) => {
                    SubscriptionPoint::Frame(self.subscription_frame_for(viewer, sid))
                }
            };
            let grandparent = self.upstream_node_of(p, sid);
            let pv = self.viewers.get_mut(&p).expect("parent exists");
            pv.routing.add_forward(sid, grandparent, viewer, point);
        }
        if matches!(self.config.placement, PlacementStrategy::Random { .. }) {
            let sub_streams: Vec<StreamId> = self.viewers[&viewer].subs.keys().copied().collect();
            for sid in sub_streams {
                self.random_receivers.entry(sid).or_default().push(viewer);
            }
        }

        // Background joins after a view change release the temporary CDN
        // serves now that the overlay carries the view.
        if background {
            let leases: Vec<_> = {
                let v = self.viewers.get_mut(&viewer).expect("viewer exists");
                let l: Vec<_> = v.temp_leases.drain_all();
                l
            };
            for (_, lease) in leases {
                self.cdn.release(lease);
            }
        } else {
            // Join-completion timestamp: overlay info to the viewer plus
            // the slowest subscription round trip to a parent.
            let lsc = self.lsc_nodes[&region];
            let mut completion = self.leg(lsc, viewer);
            let parents: Vec<NodeId> = self.viewers[&viewer]
                .subs
                .values()
                .filter_map(|s| match s.parent {
                    TreeParent::Viewer(p) => Some(p),
                    TreeParent::Cdn => None,
                })
                .collect();
            let edge = self.edge_nodes[&region];
            let mut slowest_rtt = self.leg(viewer, edge) + self.leg(edge, viewer);
            for p in parents {
                let rtt = self.leg(viewer, p) + self.leg(p, viewer);
                if rtt > slowest_rtt {
                    slowest_rtt = rtt;
                }
            }
            completion += slowest_rtt;
            self.engine.schedule_after(
                completion,
                SessionEvent::CompleteJoin {
                    viewer,
                    requested_at,
                },
            );
        }

        // Subscription chains towards displaced subtrees.
        if !displaced.is_empty() {
            self.propagate_resync(view, scope, displaced);
        }
    }

    fn finish_rejected(&mut self, viewer: NodeId, view: ViewId, background: bool) {
        self.metrics.rejected_viewers.incr();
        if !background {
            // Under an elastic pool the rejection is (typically) a
            // capacity signal: park the join for retry after the next
            // scale-up.
            self.park_rejected(viewer, view);
        }
        let leases: Vec<_> = {
            let v = self.viewers.get_mut(&viewer).expect("viewer exists");
            v.out_degrees.clear();
            let mut stale = v.pending_leases.drain_all();
            debug_assert!(stale.is_empty(), "undo left pending leases behind");
            if background {
                // Keep watching via the temporary CDN serves: convert them
                // into plain CDN subscriptions.
            } else {
                v.status = ViewerStatus::Rejected;
                v.view = None;
                stale.extend(v.temp_leases.drain_all());
            }
            stale
        };
        for (_, lease) in leases {
            self.cdn.release(lease);
        }
        if !background {
            self.shard_maybe_spill(viewer, view);
        }
        if background {
            let delta = self.scheme.delta();
            let temp: Vec<(StreamId, telecast_cdn::CdnLease)> = {
                let v = self.viewers.get_mut(&viewer).expect("viewer exists");
                v.temp_leases.drain_all()
            };
            let mut accepted = 0u64;
            let mut overflow: Vec<telecast_cdn::CdnLease> = Vec::new();
            {
                let v = self.viewers.get_mut(&viewer).expect("viewer exists");
                for (sid, lease) in temp {
                    let bw = self.stream_bw[&sid];
                    // The converted serve must hold a real inbound
                    // reservation like any other subscription.
                    if v.ports.inbound.reserve(bw).is_err() {
                        overflow.push(lease);
                        continue;
                    }
                    v.subs.insert(
                        sid,
                        StreamSub {
                            parent: TreeParent::Cdn,
                            lease: Some(lease),
                            base_e2e: delta,
                            e2e: delta,
                            layer: 0,
                            pushed_down: false,
                            bitrate_kbps: bw.as_kbps(),
                        },
                    );
                    accepted += 1;
                }
            }
            for lease in overflow {
                self.cdn.release(lease);
            }
            self.metrics.accepted_streams.add(accepted);
        }
    }

    /// Places one stream; returns `(parent, displaced_member)` or `None`
    /// if the stream cannot be served.
    #[allow(clippy::too_many_arguments)]
    fn place_stream(
        &mut self,
        viewer: NodeId,
        view: ViewId,
        scope: usize,
        region: Region,
        stream: StreamId,
        bw: Bandwidth,
        out_degree: u32,
        outbound_capacity: Bandwidth,
    ) -> Option<(TreeParent, Option<NodeId>)> {
        match self.config.placement {
            PlacementStrategy::PushDown => {
                let tree = self.scopes[scope]
                    .group_mut(view)
                    .expect("group created")
                    .tree_mut(stream)
                    .expect("tree covers view stream");
                if let Some(parent) = tree.insert(viewer, out_degree, outbound_capacity) {
                    let displaced = tree.children_of(viewer).next();
                    Some((parent, displaced))
                } else {
                    // Fall back to the CDN.
                    match self.cdn.serve(stream, bw, region) {
                        Ok(lease) => {
                            let tree = self.scopes[scope]
                                .group_mut(view)
                                .expect("group created")
                                .tree_mut(stream)
                                .expect("tree exists");
                            tree.attach_to_cdn(viewer, out_degree, outbound_capacity);
                            self.viewers
                                .get_mut(&viewer)
                                .expect("viewer exists")
                                .stash_cdn_lease(stream, lease);
                            Some((TreeParent::Cdn, None))
                        }
                        Err(_) => None,
                    }
                }
            }
            PlacementStrategy::Fifo => {
                let tree = self.scopes[scope]
                    .group_mut(view)
                    .expect("group created")
                    .tree_mut(stream)
                    .expect("tree covers view stream");
                if let Some(parent) = tree.first_free_slot_holder() {
                    tree.attach_under(viewer, out_degree, outbound_capacity, parent);
                    Some((TreeParent::Viewer(parent), None))
                } else {
                    match self.cdn.serve(stream, bw, region) {
                        Ok(lease) => {
                            let tree = self.scopes[scope]
                                .group_mut(view)
                                .expect("group created")
                                .tree_mut(stream)
                                .expect("tree exists");
                            tree.attach_to_cdn(viewer, out_degree, outbound_capacity);
                            self.viewers
                                .get_mut(&viewer)
                                .expect("viewer exists")
                                .stash_cdn_lease(stream, lease);
                            Some((TreeParent::Cdn, None))
                        }
                        Err(_) => None,
                    }
                }
            }
            PlacementStrategy::Random { probes } => {
                // "A joining node is randomly attached to another node,
                // which can serve the request": sample uniformly from the
                // whole session (no view grouping, no directory of who
                // carries what); a probe succeeds only if the sampled
                // node receives the stream and has spare upload. No
                // pre-allocation — capacity is taken from the parent's
                // port on demand.
                let mut parent_found: Option<NodeId> = None;
                if !self.viewer_pool.is_empty() {
                    for _ in 0..probes {
                        let idx = self.rng.range(0..self.viewer_pool.len());
                        let cand = self.viewer_pool[idx];
                        if cand == viewer {
                            continue;
                        }
                        let ok = self
                            .viewers
                            .get(&cand)
                            .map(|c| {
                                c.status == ViewerStatus::Connected
                                    && c.subs.contains_key(&stream)
                                    && c.ports.outbound.can_reserve(bw)
                            })
                            .unwrap_or(false);
                        if ok {
                            parent_found = Some(cand);
                            break;
                        }
                    }
                }
                if let Some(parent) = parent_found {
                    self.viewers
                        .get_mut(&parent)
                        .expect("candidate exists")
                        .ports
                        .outbound
                        .reserve(bw)
                        .expect("checked above");
                    self.random_edge_parent.insert((viewer, stream), parent);
                    let tree = self
                        .random_trees
                        .entry(stream)
                        .or_insert_with(|| StreamTree::new(stream));
                    if !tree.contains(parent) {
                        // The parent itself is CDN-served outside any
                        // tree bookkeeping (e.g. served before the tree
                        // existed); register it as a CDN child.
                        tree.attach_to_cdn(parent, u32::MAX, outbound_capacity);
                    }
                    tree.attach_under(viewer, u32::MAX, outbound_capacity, parent);
                    Some((TreeParent::Viewer(parent), None))
                } else {
                    match self.cdn.serve(stream, bw, region) {
                        Ok(lease) => {
                            let tree = self
                                .random_trees
                                .entry(stream)
                                .or_insert_with(|| StreamTree::new(stream));
                            tree.attach_to_cdn(viewer, u32::MAX, outbound_capacity);
                            self.viewers
                                .get_mut(&viewer)
                                .expect("viewer exists")
                                .stash_cdn_lease(stream, lease);
                            Some((TreeParent::Cdn, None))
                        }
                        Err(_) => None,
                    }
                }
            }
        }
    }

    /// Undoes a placement made earlier in the same join (the viewer has
    /// no children yet in that tree).
    fn undo_placement(
        &mut self,
        viewer: NodeId,
        view: ViewId,
        scope: usize,
        stream: StreamId,
        parent: TreeParent,
    ) {
        let is_random = matches!(self.config.placement, PlacementStrategy::Random { .. });
        if is_random {
            if let Some(tree) = self.random_trees.get_mut(&stream) {
                if tree.contains(viewer) {
                    let victims = tree.remove(viewer);
                    debug_assert!(victims.is_empty(), "fresh placement has no children");
                }
            }
            if let Some(p) = self.random_edge_parent.remove(&(viewer, stream)) {
                let bw = self.stream_bw[&stream];
                self.viewers
                    .get_mut(&p)
                    .expect("parent exists")
                    .ports
                    .outbound
                    .release(bw);
            }
        } else if let Some(tree) = self.scopes[scope]
            .group_mut(view)
            .and_then(|g| g.tree_mut(stream))
        {
            if tree.contains(viewer) {
                let victims = tree.remove(viewer);
                // A push-down insert may have displaced a member under us;
                // removal re-roots it at the CDN, which needs a lease or a
                // reposition — recover it like any victim.
                if !victims.is_empty() {
                    self.recover_victims(stream, view, scope, victims);
                }
            }
        }
        if parent == TreeParent::Cdn {
            if let Some(lease) = self
                .viewers
                .get_mut(&viewer)
                .expect("viewer exists")
                .temp_cdn_lease_take(stream)
            {
                self.cdn.release(lease);
            }
        }
    }

    // ------------------------------------------------------------------
    // View change (§VI)
    // ------------------------------------------------------------------

    fn process_view_change(&mut self, viewer: NodeId, view: ViewId, requested_at: SimTime) {
        let state = match self.viewers.get(&viewer) {
            Some(v) if v.status == ViewerStatus::Connected => v,
            _ => return,
        };
        let region = state.region;

        // Fast path: serve every stream of the new view straight from the
        // CDN (temporary leases).
        let new_streams: Vec<(StreamId, Bandwidth)> = self
            .catalog
            .view(view)
            .streams_by_priority()
            .iter()
            .map(|s| (s.stream, Bandwidth::from_kbps(s.bitrate_kbps)))
            .collect();
        let mut temp_granted = 0usize;
        for (sid, bw) in &new_streams {
            if let Ok(lease) = self.cdn.serve(*sid, *bw, region) {
                self.viewers
                    .get_mut(&viewer)
                    .expect("viewer exists")
                    .temp_leases
                    .insert(*sid, lease);
                temp_granted += 1;
            }
        }

        // The old view's subtree bandwidth kept flowing between the
        // switch request and this teardown — account it as waste.
        let old_kbps: u64 = self.viewers[&viewer]
            .subs
            .values()
            .map(|s| s.bitrate_kbps)
            .sum();
        let waste_window_ms = (self.engine.now() - requested_at).as_micros() / 1_000;
        self.metrics
            .wasted_subtree_kbps_ms
            .add(old_kbps * waste_window_ms);

        // Leave the old view's trees (creating victims), release old
        // resources.
        self.teardown_subscriptions(viewer);
        {
            let v = self.viewers.get_mut(&viewer).expect("viewer exists");
            v.view = Some(view);
        }

        // The view change is "satisfied" once the CDN edge starts feeding
        // the viewer: LSC→edge plus edge→viewer legs.
        let edge = self.edge_nodes[&region];
        let lsc = self.lsc_nodes[&region];
        let serve_legs = self.leg(lsc, edge) + self.leg(edge, viewer);
        let delay = (self.engine.now() + serve_legs) - requested_at;
        self.metrics
            .view_change_delays_ms
            .record(delay.as_micros() as f64 / 1_000.0);
        // Switch latency proper: old tree left now, first frame of the
        // new view lands `serve_legs` later — provided the CDN fast
        // path granted at least one temporary serve. A starved switch
        // waits for the background join instead.
        if temp_granted > 0 {
            self.metrics
                .switch_latency_ms
                .record(serve_legs.as_micros() as f64 / 1_000.0);
        } else {
            self.metrics.switch_starved.incr();
        }

        // Background: the normal join into the new group.
        let backoff = self.config.lsc_processing + self.leg(lsc, viewer);
        self.engine.schedule_after(
            serve_legs + backoff,
            SessionEvent::BackgroundJoin { viewer, view },
        );
    }

    // ------------------------------------------------------------------
    // Departure / failure
    // ------------------------------------------------------------------

    fn process_depart(&mut self, viewer: NodeId) {
        let state = match self.viewers.get(&viewer) {
            Some(v) if v.status == ViewerStatus::Connected => v,
            _ => return,
        };
        let _ = state;
        self.teardown_subscriptions(viewer);
        let leases: Vec<_> = {
            let v = self.viewers.get_mut(&viewer).expect("viewer exists");
            if v.status == ViewerStatus::Connected {
                self.connected_count -= 1;
            }
            v.status = ViewerStatus::Idle;
            v.view = None;
            v.temp_leases.drain_all()
        };
        for (_, lease) in leases {
            self.cdn.release(lease);
        }
    }

    /// Releases every subscription of `viewer`: tree membership (victims
    /// recovered), CDN leases, port reservations, routing entries. In
    /// sharded mode a foreign serve cannot be released here — the leases
    /// live in the donor shard's pool — so they travel back via the
    /// outbox instead.
    fn teardown_subscriptions(&mut self, viewer: NodeId) {
        let at = self.engine.now();
        if let Some(state) = &mut self.shard {
            if let Some(foreign) = state.foreign.remove(&viewer) {
                state.outbox.push(
                    at,
                    crate::shard::ShardMessage::ReleaseForeign {
                        donor: foreign.donor,
                        leases: foreign.leases,
                    },
                );
                self.metrics.spill_releases.incr();
            }
        }
        let (region, subs): (Region, Vec<(StreamId, StreamSub)>) = {
            let v = self.viewers.get_mut(&viewer).expect("viewer exists");
            let subs = std::mem::take(&mut v.subs).into_iter().collect();
            (v.region, subs)
        };
        let view = self.viewers[&viewer].view;
        let scope = self.scope_of(region);
        let is_random = matches!(self.config.placement, PlacementStrategy::Random { .. });

        let mut inbound_release = Bandwidth::ZERO;
        for (sid, sub) in subs {
            inbound_release += Bandwidth::from_kbps(sub.bitrate_kbps);
            if let Some(lease) = sub.lease {
                self.cdn.release(lease);
            }
            if is_random {
                if let Some(tree) = self.random_trees.get_mut(&sid) {
                    if tree.contains(viewer) {
                        let victims = tree.remove(viewer);
                        self.recover_random_victims(sid, victims);
                    }
                }
                if let Some(p) = self.random_edge_parent.remove(&(viewer, sid)) {
                    let bw = self.stream_bw[&sid];
                    if let Some(pv) = self.viewers.get_mut(&p) {
                        pv.ports.outbound.release(bw);
                    }
                }
                if let Some(list) = self.random_receivers.get_mut(&sid) {
                    if let Some(pos) = list.iter().position(|&n| n == viewer) {
                        list.swap_remove(pos);
                    }
                }
            } else if let Some(v) = view {
                if let Some(tree) = self.scopes[scope]
                    .group_mut(v)
                    .and_then(|g| g.tree_mut(sid))
                {
                    if tree.contains(viewer) {
                        let victims = tree.remove(viewer);
                        self.recover_victims(sid, v, scope, victims);
                    }
                }
            }
        }
        {
            let v = self.viewers.get_mut(&viewer).expect("viewer exists");
            if !inbound_release.is_zero() {
                v.ports.inbound.release(inbound_release);
            }
            if !is_random {
                let used = v.ports.outbound.used();
                if !used.is_zero() {
                    v.ports.outbound.release(used);
                }
            }
            v.out_degrees.clear();
            v.routing = telecast_overlay::SessionRoutingTable::new();
        }
        if let Some(v) = view {
            if !is_random {
                self.scopes[scope].leave(viewer);
                self.prune_view(v, scope);
            }
        }
    }

    // ------------------------------------------------------------------
    // Per-view tree prune/merge
    // ------------------------------------------------------------------

    /// Shrinks an abandoned view's overlay after a member left it. Only
    /// active when [`SessionConfig::prune_member_floor`] is set and the
    /// group's registered membership is at or below the floor: folds
    /// CDN-rooted tree fragments under P2P parents (weakest root first,
    /// releasing the folded roots' CDN serves back to the pool) and
    /// retires the group once membership and trees have fully drained.
    /// Consumes no RNG draws, so runs are byte-identical whether the
    /// knob is merely unset or the floor is never reached.
    fn prune_view(&mut self, view: ViewId, scope: usize) {
        let Some(floor) = self.config.prune_member_floor else {
            return;
        };
        let Some(group) = self.scopes[scope].group(view) else {
            return;
        };
        if group.member_count() > floor {
            return;
        }
        let mut streams: Vec<StreamId> = group.streams().collect();
        streams.sort_unstable();
        for sid in streams {
            // One bounded sweep: snapshot the current roots and attempt
            // each at most once, weakest first. A fold the layering
            // machinery undoes (the §VI resync reroutes a too-deep
            // chain back to the CDN) is NOT retried within this call —
            // the root simply remains for a later pass. Re-attempting
            // it here would ping-pong fold/reroute forever.
            let roots = self.scopes[scope]
                .group(view)
                .and_then(|g| g.tree(sid))
                .map(|t| t.cdn_fragment_roots())
                .unwrap_or_default();
            if roots.len() <= 1 {
                continue;
            }
            for root in roots {
                self.merge_fragment_root(root, sid, view, scope);
            }
        }
        if self.scopes[scope].retire_if_drained(view) {
            self.metrics.groups_retired.incr();
        }
    }

    /// Tries to fold one CDN-rooted fragment root under a P2P parent
    /// (the prune-pass analogue of [`TelecastSession::reposition_victim`],
    /// without the background scheduling). Returns whether the root
    /// moved. Either way the fold releases one CDN serve: ours when the
    /// new parent is a viewer, the displaced child's spare when we took
    /// over its root slot.
    fn merge_fragment_root(
        &mut self,
        root: NodeId,
        stream: StreamId,
        view: ViewId,
        scope: usize,
    ) -> bool {
        let still_cdn = self
            .viewers
            .get(&root)
            .and_then(|v| v.subs.get(&stream))
            .map(|s| s.parent == TreeParent::Cdn)
            .unwrap_or(false);
        if !still_cdn {
            return false;
        }
        let repositioned = self.scopes[scope]
            .group_mut(view)
            .and_then(|g| g.tree_mut(stream))
            .filter(|t| t.parent_of(root) == Some(TreeParent::Cdn))
            .map(|t| t.reposition_from_cdn(root))
            .unwrap_or(None);
        let Some(parent) = repositioned else {
            return false;
        };
        if let TreeParent::Viewer(_) = parent {
            if let Some(lease) = self
                .viewers
                .get_mut(&root)
                .expect("root exists")
                .subs
                .get_mut(&stream)
                .and_then(|s| s.lease.take())
            {
                self.cdn.release(lease);
            }
        }
        self.metrics.fragments_merged.incr();
        self.metrics
            .prune_reclaimed_kbps
            .add(self.stream_bw[&stream].as_kbps());
        self.after_reposition(root, stream, view, scope, parent);
        true
    }

    // ------------------------------------------------------------------
    // Victim recovery (§VI)
    // ------------------------------------------------------------------

    /// Recovers victims of a removal in a grouped (push-down/FIFO) tree:
    /// each is already parked at the CDN root by `StreamTree::remove`;
    /// give it a CDN lease at its current delay layer if the pool allows,
    /// otherwise reposition immediately; failing both, drop the stream.
    fn recover_victims(
        &mut self,
        stream: StreamId,
        view: ViewId,
        scope: usize,
        victims: Vec<NodeId>,
    ) {
        let bw = self.stream_bw[&stream];
        for victim in victims {
            self.metrics.victims.incr();
            // Recovering an earlier victim of this batch can cascade
            // (CDN-less drop → subtree removal → recursive recovery) and
            // move or drop this one before the loop reaches it; only
            // viewers still parked at the CDN root need recovery.
            let still_parked = self.scopes[scope]
                .group(view)
                .and_then(|g| g.tree(stream))
                .map(|t| t.parent_of(victim) == Some(TreeParent::Cdn))
                .unwrap_or(false);
            if !still_parked {
                continue;
            }
            let region = self.viewers[&victim].region;
            match self.cdn.serve(stream, bw, region) {
                Ok(lease) => {
                    if let Some(sub) = self
                        .viewers
                        .get_mut(&victim)
                        .expect("victim exists")
                        .subs
                        .get_mut(&stream)
                    {
                        sub.parent = TreeParent::Cdn;
                        sub.lease = Some(lease);
                        // Served "at the current delay layer": e2e/layer
                        // stay as they were (the CDN cache reaches them).
                    } else {
                        // Victim no longer subscribes (raced teardown).
                        self.cdn.release(lease);
                        continue;
                    }
                    // Background reposition through the LSC.
                    let legs =
                        self.config.lsc_processing + self.leg(self.lsc_nodes[&region], victim);
                    self.engine.schedule_after(
                        legs,
                        SessionEvent::RepositionVictim {
                            viewer: victim,
                            stream,
                        },
                    );
                }
                Err(_) => {
                    // No CDN headroom: try an immediate reposition.
                    let repositioned = self.scopes[scope]
                        .group_mut(view)
                        .and_then(|g| g.tree_mut(stream))
                        .map(|t| t.reposition_from_cdn(victim))
                        .unwrap_or(None);
                    match repositioned {
                        Some(parent) => {
                            self.metrics.victims_repositioned.incr();
                            self.after_reposition(victim, stream, view, scope, parent);
                        }
                        None => self.drop_stream(victim, stream, view, scope),
                    }
                }
            }
        }
    }

    /// Victims in the Random baseline: CDN or drop (the scheme has no
    /// reposition logic).
    fn recover_random_victims(&mut self, stream: StreamId, victims: Vec<NodeId>) {
        let bw = self.stream_bw[&stream];
        for victim in victims {
            self.metrics.victims.incr();
            let region = self.viewers[&victim].region;
            match self.cdn.serve(stream, bw, region) {
                Ok(lease) => {
                    if let Some(sub) = self
                        .viewers
                        .get_mut(&victim)
                        .expect("victim exists")
                        .subs
                        .get_mut(&stream)
                    {
                        sub.parent = TreeParent::Cdn;
                        sub.lease = Some(lease);
                    } else {
                        self.cdn.release(lease);
                    }
                }
                Err(_) => {
                    // Drop the stream for the victim.
                    if let Some(tree) = self.random_trees.get_mut(&stream) {
                        if tree.contains(victim) {
                            let next = tree.remove(victim);
                            let v = self.viewers.get_mut(&victim).expect("victim exists");
                            if let Some(sub) = v.subs.remove(&stream) {
                                v.ports
                                    .inbound
                                    .release(Bandwidth::from_kbps(sub.bitrate_kbps));
                            }
                            if let Some(list) = self.random_receivers.get_mut(&stream) {
                                if let Some(pos) = list.iter().position(|&n| n == victim) {
                                    list.swap_remove(pos);
                                }
                            }
                            self.recover_random_victims(stream, next);
                        }
                    }
                }
            }
        }
    }

    /// Background reposition of a CDN-parked victim (the second half of
    /// the §VI recovery).
    fn reposition_victim(&mut self, viewer: NodeId, stream: StreamId) {
        let (view, region) = match self.viewers.get(&viewer) {
            Some(v) if v.status == ViewerStatus::Connected => match v.view {
                Some(view) => (view, v.region),
                None => return,
            },
            _ => return,
        };
        // Only meaningful while still CDN-parented for this stream.
        let still_cdn = self.viewers[&viewer]
            .subs
            .get(&stream)
            .map(|s| s.parent == TreeParent::Cdn)
            .unwrap_or(false);
        if !still_cdn {
            return;
        }
        let scope = self.scope_of(region);
        let repositioned = self.scopes[scope]
            .group_mut(view)
            .and_then(|g| g.tree_mut(stream))
            .filter(|t| t.parent_of(viewer) == Some(TreeParent::Cdn))
            .map(|t| t.reposition_from_cdn(viewer))
            .unwrap_or(None);
        if let Some(parent) = repositioned {
            if let TreeParent::Viewer(_) = parent {
                // Off the CDN: release the lease.
                if let Some(lease) = self
                    .viewers
                    .get_mut(&viewer)
                    .expect("viewer exists")
                    .subs
                    .get_mut(&stream)
                    .and_then(|s| s.lease.take())
                {
                    self.cdn.release(lease);
                }
            }
            self.metrics.victims_repositioned.incr();
            self.after_reposition(viewer, stream, view, scope, parent);
        }
    }

    /// Fixes state after a reposition: new delays for the moved viewer
    /// and its subtree, plus lease handling for a displaced CDN child.
    fn after_reposition(
        &mut self,
        viewer: NodeId,
        stream: StreamId,
        view: ViewId,
        scope: usize,
        parent: TreeParent,
    ) {
        // A displaced node (now our child) may have been CDN-served; its
        // lease becomes spare.
        let displaced: Vec<NodeId> = self.scopes[scope]
            .group(view)
            .and_then(|g| g.tree(stream))
            .map(|t| t.children_of(viewer).collect())
            .unwrap_or_default();
        let mut spare_leases: Vec<telecast_cdn::CdnLease> = Vec::new();
        for d in displaced {
            let lease = self
                .viewers
                .get_mut(&d)
                .and_then(|v| v.subs.get_mut(&stream))
                .and_then(|s| {
                    if s.parent == TreeParent::Cdn {
                        s.parent = TreeParent::Viewer(viewer);
                        s.lease.take()
                    } else {
                        None
                    }
                });
            spare_leases.extend(lease);
        }
        {
            let v = self.viewers.get_mut(&viewer).expect("viewer exists");
            if let Some(sub) = v.subs.get_mut(&stream) {
                sub.parent = parent;
                // Taking a CDN slot (by displacing its holder) requires a
                // lease; inherit the displaced child's.
                if parent == TreeParent::Cdn && sub.lease.is_none() {
                    sub.lease = spare_leases.pop();
                }
            }
        }
        for lease in spare_leases {
            self.cdn.release(lease);
        }
        // The inherited lease may still be missing (displaced child was
        // itself mid-recovery): serve from the pool or give the stream up.
        let needs_lease = {
            let v = &self.viewers[&viewer];
            v.subs
                .get(&stream)
                .map(|s| s.parent == TreeParent::Cdn && s.lease.is_none())
                .unwrap_or(false)
        };
        if needs_lease {
            let bw = self.stream_bw[&stream];
            let region = self.viewers[&viewer].region;
            match self.cdn.serve(stream, bw, region) {
                Ok(lease) => {
                    self.viewers
                        .get_mut(&viewer)
                        .expect("viewer exists")
                        .subs
                        .get_mut(&stream)
                        .expect("sub exists")
                        .lease = Some(lease);
                }
                Err(_) => {
                    self.drop_stream(viewer, stream, view, scope);
                    return;
                }
            }
        }
        self.propagate_resync(view, scope, vec![viewer]);
    }

    /// Drops `stream` at `viewer` entirely (layer violation or failed
    /// recovery), cascading victim recovery to its children.
    fn drop_stream(&mut self, viewer: NodeId, stream: StreamId, view: ViewId, scope: usize) {
        let victims = self.scopes[scope]
            .group_mut(view)
            .and_then(|g| g.tree_mut(stream))
            .map(|t| {
                if t.contains(viewer) {
                    t.remove(viewer)
                } else {
                    Vec::new()
                }
            })
            .unwrap_or_default();
        let lease = {
            let v = self.viewers.get_mut(&viewer).expect("viewer exists");
            match v.subs.remove(&stream) {
                Some(sub) => {
                    v.ports
                        .inbound
                        .release(Bandwidth::from_kbps(sub.bitrate_kbps));
                    sub.lease
                }
                None => None,
            }
        };
        if let Some(lease) = lease {
            self.cdn.release(lease);
        }
        self.metrics.layer_drops.incr();
        if !victims.is_empty() {
            self.recover_victims(stream, view, scope, victims);
        }
    }

    // ------------------------------------------------------------------
    // Subscription chains (§V-B3)
    // ------------------------------------------------------------------

    /// Recomputes delays and layers for the seed viewers and propagates
    /// along the affected subtrees until quiescent.
    fn propagate_resync(&mut self, view: ViewId, scope: usize, seeds: Vec<NodeId>) {
        let mut queue: std::collections::VecDeque<NodeId> = seeds.into_iter().collect();
        let mut visits: FxHashMap<NodeId, usize> = FxHashMap::default();
        while let Some(w) = queue.pop_front() {
            let count = visits.entry(w).or_insert(0);
            *count += 1;
            if *count > RESYNC_VISIT_CAP {
                self.metrics.resync_cap_hits.incr();
                continue;
            }
            let changed_streams = self.resync_viewer(w, view, scope);
            if changed_streams.is_empty() {
                continue;
            }
            self.metrics
                .subscription_messages
                .add(changed_streams.len() as u64);
            if let Some(g) = self.scopes[scope].group(view) {
                for sid in &changed_streams {
                    if let Some(t) = g.tree(*sid) {
                        queue.extend(t.children_of(w));
                    }
                }
            }
            // A change (e.g. a §VI CDN reroute) shifts this viewer's own
            // push-down baseline: revisit once more to reach a fixpoint.
            queue.push_back(w);
        }
    }

    /// Recomputes one viewer's delay layers from the trees' current
    /// structure (the source of truth for parents — a displacement may
    /// have changed them); returns the streams whose effective delay
    /// changed.
    fn resync_viewer(&mut self, viewer: NodeId, view: ViewId, scope: usize) -> Vec<StreamId> {
        let Some(state) = self.viewers.get(&viewer) else {
            return Vec::new();
        };
        if state.status != ViewerStatus::Connected || state.view != Some(view) {
            return Vec::new();
        }
        // Pass 1: read current parents from the trees, recompute base
        // delays (CDN-parented streams keep their stored delay — victims
        // stay at their layer). Each entry starts at its natural layer
        // with effective delay = base; layering adjusts both below.
        let group = self.scopes[scope].group(view);
        let now = self.engine.now();
        let mut finals: Vec<(StreamId, TreeParent, SimDuration, u64, SimDuration, bool)> =
            Vec::with_capacity(state.subs.len());
        for (&sid, sub) in &state.subs {
            let tree_parent = group
                .and_then(|g| g.tree(sid))
                .and_then(|t| t.parent_of(viewer))
                .unwrap_or(sub.parent);
            let (base, parent) = match tree_parent {
                TreeParent::Cdn => (sub.base_e2e, tree_parent),
                TreeParent::Viewer(p) => {
                    let pe2e = self
                        .viewers
                        .get(&p)
                        .and_then(|pv| pv.subs.get(&sid))
                        .map(|ps| ps.e2e)
                        .unwrap_or(self.scheme.delta());
                    let d = pe2e + self.delays.one_way(now, p, viewer) + self.config.hop_processing;
                    (d, tree_parent)
                }
            };
            let layer = self.scheme.layer_of_delay(base);
            finals.push((sid, parent, base, layer, base, false));
        }
        // Effective delays: layer push-down plus the residual delayed
        // receive that makes the dbuff bound exact (see process_join).
        if self.config.layering_enabled {
            let mut layers: Vec<u64> = finals.iter().map(|&(_, _, _, l, _, _)| l).collect();
            self.scheme.push_down(&mut layers);
            for (entry, &l) in finals.iter_mut().zip(layers.iter()) {
                let natural = self.scheme.layer_of_delay(entry.2);
                entry.3 = l;
                entry.5 = l > natural;
                entry.4 = if entry.5 {
                    self.scheme.delay_at_top_of(l)
                } else {
                    entry.2
                };
            }
            if let Some(deepest) = finals.iter().map(|&(_, _, _, _, e, _)| e).max() {
                for entry in finals.iter_mut() {
                    if deepest - entry.4 > self.config.dbuff {
                        entry.4 = deepest - self.config.dbuff;
                        entry.3 = self.scheme.layer_of_delay(entry.4);
                        entry.5 = true;
                    }
                }
            }
        }

        // Pass 2: apply; collect changes, stale leases, §VI CDN reroutes
        // for over-limit streams, and drops when the pool is full too.
        let mut changed = Vec::new();
        let mut drops = Vec::new();
        let mut reroutes: Vec<StreamId> = Vec::new();
        let mut stale_leases = Vec::new();
        {
            let v = self.viewers.get_mut(&viewer).expect("viewer exists");
            for (sid, parent, base, layer, e2e, pushed) in finals {
                let max_layer = self.scheme.max_layer();
                if self.config.layering_enabled && layer > max_layer {
                    if matches!(parent, TreeParent::Viewer(_)) {
                        reroutes.push(sid);
                    } else {
                        drops.push(sid);
                    }
                    continue;
                }
                let sub = v.subs.get_mut(&sid).expect("planned sub exists");
                if sub.parent != parent {
                    // Displaced off the CDN root into a viewer's slot: the
                    // lease is no longer needed.
                    if let (TreeParent::Viewer(_), Some(lease)) = (parent, sub.lease.take()) {
                        stale_leases.push(lease);
                    }
                    sub.parent = parent;
                }
                if sub.e2e != e2e || sub.layer != layer {
                    changed.push(sid);
                }
                sub.base_e2e = base;
                sub.e2e = e2e;
                sub.layer = layer;
                sub.pushed_down = pushed;
            }
        }
        for lease in stale_leases {
            self.cdn.release(lease);
        }
        // §VI: "if the parent is another viewer, then LSC first tries to
        // provision the stream from the CDN" — only drop when the pool is
        // exhausted too.
        for sid in reroutes {
            let bw = self.stream_bw[&sid];
            let region = self.viewers[&viewer].region;
            match self.cdn.serve(sid, bw, region) {
                Ok(lease) => {
                    if let Some(tree) = self.scopes[scope]
                        .group_mut(view)
                        .and_then(|g| g.tree_mut(sid))
                    {
                        if tree.contains(viewer) {
                            tree.reparent_to_cdn(viewer);
                        }
                    }
                    let delta = self.scheme.delta();
                    let v = self.viewers.get_mut(&viewer).expect("viewer exists");
                    let sub = v.subs.get_mut(&sid).expect("sub exists");
                    sub.parent = TreeParent::Cdn;
                    sub.lease = Some(lease);
                    sub.base_e2e = delta;
                    sub.e2e = delta;
                    sub.layer = 0;
                    sub.pushed_down = false;
                    changed.push(sid);
                }
                Err(_) => drops.push(sid),
            }
        }
        for sid in drops {
            self.drop_stream(viewer, sid, view, scope);
        }
        changed
    }

    // ------------------------------------------------------------------
    // Helpers
    // ------------------------------------------------------------------

    fn check_view(&self, view: ViewId) -> Result<(), TelecastError> {
        if view.index() < self.catalog.len() {
            Ok(())
        } else {
            Err(TelecastError::UnknownView(view))
        }
    }

    fn scope_of(&self, region: Region) -> usize {
        match self.config.group_scope {
            GroupScope::PerLsc => region.index(),
            GroupScope::Global => 0,
        }
    }

    fn leg(&self, a: NodeId, b: NodeId) -> SimDuration {
        self.delays.one_way(self.engine.now(), a, b)
    }

    /// End-to-end delay of `stream` at `viewer` through `parent`.
    fn path_delay(&self, viewer: NodeId, stream: StreamId, parent: TreeParent) -> SimDuration {
        match parent {
            TreeParent::Cdn => self.scheme.delta(),
            TreeParent::Viewer(p) => {
                let pe2e = self
                    .viewers
                    .get(&p)
                    .and_then(|pv| pv.subs.get(&stream))
                    .map(|ps| ps.e2e)
                    .unwrap_or(self.scheme.delta());
                pe2e + self.leg(p, viewer) + self.config.hop_processing
            }
        }
    }

    /// The node id representing `viewer`'s upstream for `stream` in its
    /// routing table match field (the CDN edge node for CDN parents).
    fn upstream_node_of(&self, viewer: NodeId, stream: StreamId) -> NodeId {
        let state = &self.viewers[&viewer];
        match state.subs.get(&stream).map(|s| s.parent) {
            Some(TreeParent::Viewer(p)) => p,
            _ => self.edge_nodes[&state.region],
        }
    }

    /// Eq. 2 subscription point for `viewer`'s current layer on `stream`.
    fn subscription_frame_for(&self, viewer: NodeId, stream: StreamId) -> FrameNumber {
        let state = &self.viewers[&viewer];
        let sub = &state.subs[&stream];
        let fps = self.stream_fps[&stream];
        let latest = self
            .monitor
            .latest_frame(stream, self.engine.now())
            .expect("subscribed streams are monitored");
        let (dprop, processing) = match sub.parent {
            TreeParent::Viewer(p) => (
                self.delays.one_way(self.engine.now(), p, viewer),
                self.config.hop_processing,
            ),
            TreeParent::Cdn => (SimDuration::ZERO, SimDuration::ZERO),
        };
        self.scheme
            .subscription_frame(latest, fps, sub.layer, dprop, processing)
    }
}

// ----------------------------------------------------------------------
// Sharded-runtime hooks (see crate::shard): the owner/donor halves of the
// cross-shard spill protocol, plus the outbox plumbing the coordinator
// drains at each epoch barrier. All of these run either inside this
// shard's own event loop or sequentially in the coordinator's merge
// phase — never concurrently.
// ----------------------------------------------------------------------
impl TelecastSession {
    /// Marks this session as shard `id` owning `region`'s viewers.
    ///
    /// # Panics
    ///
    /// Panics if sharding was already enabled.
    pub(crate) fn enable_sharding(&mut self, id: usize, region: Region) {
        assert!(self.shard.is_none(), "sharding already enabled");
        self.shard = Some(crate::shard::ShardState::new(id, region));
    }

    /// Events this session's engine has fired.
    pub fn events_processed(&self) -> u64 {
        self.engine.events_fired()
    }

    /// Drains the cross-shard outbox into `buf` by swapping buffers, so
    /// the per-epoch drain reuses one allocation per shard (see
    /// [`telecast_sim::Outbox::take_into`]). No-op on the legacy path.
    pub(crate) fn shard_take_outbox_into(
        &mut self,
        buf: &mut Vec<telecast_sim::OutboxEntry<crate::shard::ShardMessage>>,
    ) {
        match &mut self.shard {
            Some(state) => state.outbox.take_into(buf),
            None => buf.clear(),
        }
    }

    /// Headroom of this shard's CDN pool, in Kbps — the figure the
    /// coordinator ranks donors by.
    pub(crate) fn shard_headroom_kbps(&self) -> u64 {
        (0..self.cdn.pool_slots())
            .map(|slot| self.cdn.pool(slot).available().as_kbps())
            .sum()
    }

    /// Emits a spill request for a capacity-rejected foreground join:
    /// the viewer just moved to [`ViewerStatus::Rejected`] and the local
    /// pool cannot cover the view, so offer it to a foreign pool at the
    /// next barrier. No-op on the legacy path, when the rejection was
    /// not a capacity one (a foreign pool cannot fix inbound
    /// allocation), or while an earlier request is still in flight.
    fn shard_maybe_spill(&mut self, viewer: NodeId, view: ViewId) {
        if self.shard.is_none() {
            return;
        }
        let demand = self.view_demand_kbps(view);
        let slot = self.cdn.slot_of(self.viewers[&viewer].region);
        if self.cdn.pool(slot).available().as_kbps() >= demand {
            return;
        }
        let at = self.engine.now();
        let state = self.shard.as_mut().expect("checked above");
        if !state.spill_pending.insert(viewer) {
            return;
        }
        state.outbox.push(
            at,
            crate::shard::ShardMessage::SpillRequest {
                viewer,
                view,
                demand_kbps: demand,
            },
        );
        self.metrics.spill_requests.incr();
    }

    /// Donor half of a spill: serve every stream of `view` from this
    /// shard's pool, all-or-nothing. Returns the leases (in the view's
    /// stream order) or `None` with nothing reserved.
    pub(crate) fn shard_grant_view(&mut self, view: ViewId) -> Option<Vec<telecast_cdn::CdnLease>> {
        let region = self.shard.as_ref().map(|s| s.region)?;
        let streams: Vec<StreamId> = self.catalog.view(view).streams().collect();
        let mut leases = Vec::with_capacity(streams.len());
        for stream in streams {
            let bw = self.stream_bw[&stream];
            match self.cdn.serve(stream, bw, region) {
                Ok(lease) => leases.push(lease),
                Err(_) => {
                    for lease in leases {
                        self.cdn.release(lease);
                    }
                    return None;
                }
            }
        }
        Some(leases)
    }

    /// Owner half of a spill: connect `viewer` on leases held in
    /// `donor`'s pool. The viewer keeps no local subscriptions and no
    /// inbound reservation — the serve is fully foreign, and the leases
    /// ride back to the donor on departure. Returns the leases untouched
    /// if the viewer moved on since the request (dwell expiry, re-join).
    pub(crate) fn shard_apply_spill_grant(
        &mut self,
        viewer: NodeId,
        view: ViewId,
        donor: usize,
        leases: Vec<telecast_cdn::CdnLease>,
    ) -> Result<(), Vec<telecast_cdn::CdnLease>> {
        let pending = self
            .shard
            .as_mut()
            .map(|s| s.spill_pending.remove(&viewer))
            .unwrap_or(false);
        let rejected = self
            .viewers
            .get(&viewer)
            .map(|v| v.status == ViewerStatus::Rejected)
            .unwrap_or(false);
        if !pending || !rejected {
            return Err(leases);
        }
        {
            let v = self.viewers.get_mut(&viewer).expect("viewer exists");
            debug_assert!(v.subs.is_empty(), "rejected viewer kept subscriptions");
            debug_assert!(
                v.ports.inbound.used().is_zero(),
                "rejected viewer kept inbound reservations"
            );
            v.status = ViewerStatus::Connected;
            v.view = Some(view);
        }
        self.connected_count += 1;
        self.retry_parked.remove(&viewer);
        self.metrics.spill_admits.incr();
        self.shard
            .as_mut()
            .expect("pending implies sharded")
            .foreign
            .insert(viewer, crate::shard::ForeignServe { donor, leases });
        Ok(())
    }

    /// Clears a viewer's in-flight spill marker after the coordinator
    /// found no donor — the next capacity rejection may try again.
    pub(crate) fn shard_spill_denied(&mut self, viewer: NodeId) {
        if let Some(state) = &mut self.shard {
            state.spill_pending.remove(&viewer);
        }
    }

    /// Releases donor-pool leases handed back by the coordinator (a
    /// departed spill-served viewer, or a grant the owner refused).
    pub(crate) fn shard_release_leases(&mut self, leases: Vec<telecast_cdn::CdnLease>) {
        for lease in leases {
            self.cdn.release(lease);
        }
    }
}

// ----------------------------------------------------------------------
// Fleet hooks — the narrow interface a multi-tenant coordinator
// (`TenantFleet`) drives at its epoch barriers. A fleet-managed session
// keeps no autoscalers of its own: the fleet aggregates demand across
// every tenant, scales the shared broker pools, and hands each tenant
// its arbitrated retry budget. All of these run sequentially in the
// coordinator's barrier phase.
// ----------------------------------------------------------------------
impl TelecastSession {
    /// Takes (and zeroes) the fresh arrival demand accumulated per pool
    /// slot since the last barrier, in Kbps — the fleet sums these
    /// across tenants as the predictive controller's inflow signal.
    pub(crate) fn fleet_take_arrival_demand(&mut self) -> Vec<u64> {
        let slots = self.arrival_demand_kbps.len();
        std::mem::replace(&mut self.arrival_demand_kbps, vec![0; slots])
    }

    /// This tenant's forecast phase ratio (expected arrival-rate ratio
    /// one `horizon` ahead, measured against the rate `lag` ago), or
    /// `None` when no churn runtime drives the session.
    pub(crate) fn fleet_phase_ratio(
        &self,
        now: SimTime,
        horizon: telecast_sim::SimDuration,
        lag: telecast_sim::SimDuration,
    ) -> Option<f64> {
        self.churn
            .as_ref()
            .map(|c| c.spec.rate_profile.forecast_ratio_lagged(now, horizon, lag))
    }

    /// Worst-case CDN demand parked on each slot's retry queue, in Kbps
    /// — the per-tenant pending figure the fleet's fair arbitration
    /// splits pool headroom over. Stale entries (unparked or no longer
    /// Rejected) cost nothing.
    pub(crate) fn fleet_pending_retry_kbps(&self) -> Vec<u64> {
        (0..self.retry_queues.len())
            .map(|slot| {
                self.retry_queues[slot]
                    .iter()
                    .filter(|(viewer, _)| {
                        self.retry_parked.contains(viewer)
                            && self
                                .viewers
                                .get(viewer)
                                .map(|v| v.status == ViewerStatus::Rejected)
                                .unwrap_or(false)
                    })
                    .map(|&(_, view)| self.view_demand_kbps(view))
                    .sum()
            })
            .collect()
    }

    /// Drains each slot's retry queue under the budget the fleet's
    /// arbitration granted this tenant (Kbps per slot; slots beyond the
    /// budget list get nothing).
    pub(crate) fn fleet_drain_retries(&mut self, budgets: &[u64]) {
        for slot in 0..self.retry_queues.len() {
            let budget = budgets.get(slot).copied().unwrap_or(0);
            if budget == 0 || self.retry_queues[slot].is_empty() {
                continue;
            }
            self.drain_retry_slot(slot, budget);
        }
    }
}

// Small private conveniences on ViewerState used only by the session.
impl ViewerState {
    fn stash_cdn_lease(&mut self, stream: StreamId, lease: telecast_cdn::CdnLease) {
        let previous = self.pending_leases.insert(stream, lease);
        debug_assert!(previous.is_none(), "pending lease overwritten");
    }

    fn temp_cdn_lease_take(&mut self, stream: StreamId) -> Option<telecast_cdn::CdnLease> {
        self.pending_leases.remove(&stream)
    }
}

trait DrainAll {
    type Item;
    fn drain_all(&mut self) -> Vec<Self::Item>;
}

impl<K: Ord + Copy, V> DrainAll for BTreeMap<K, V> {
    type Item = (K, V);
    fn drain_all(&mut self) -> Vec<(K, V)> {
        std::mem::take(self).into_iter().collect()
    }
}

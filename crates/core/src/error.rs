//! Error types of the 4D TeleCast core.

use std::error::Error;
use std::fmt;

use telecast_media::ViewId;
use telecast_net::NodeId;

/// Why a viewer's join (or view-change) request was rejected outright.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Fewer streams than producer sites could be provisioned — the
    /// admission constraint `N_accepted ≥ n` failed.
    SiteCoverage,
    /// The viewer's inbound capacity could not fit even the mandatory
    /// per-site top-priority streams.
    InboundExhausted,
    /// Neither the P2P layer nor the CDN had outbound capacity for the
    /// mandatory streams.
    SupplyExhausted,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RejectReason::SiteCoverage => "not every producer site could be covered",
            RejectReason::InboundExhausted => "viewer inbound capacity exhausted",
            RejectReason::SupplyExhausted => "no P2P or CDN supply for mandatory streams",
        };
        f.write_str(s)
    }
}

/// Errors surfaced by the public session API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TelecastError {
    /// The node id does not denote a viewer of this session.
    UnknownViewer(NodeId),
    /// The view id is outside the session's catalog.
    UnknownView(ViewId),
    /// The viewer is already connected (double join).
    AlreadyJoined(NodeId),
    /// The viewer is not connected (view change / departure without join).
    NotJoined(NodeId),
}

impl fmt::Display for TelecastError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TelecastError::UnknownViewer(v) => write!(f, "unknown viewer {v}"),
            TelecastError::UnknownView(v) => write!(f, "unknown view {v}"),
            TelecastError::AlreadyJoined(v) => write!(f, "viewer {v} already joined"),
            TelecastError::NotJoined(v) => write!(f, "viewer {v} is not joined"),
        }
    }
}

impl Error for TelecastError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_concise() {
        assert_eq!(
            RejectReason::SiteCoverage.to_string(),
            "not every producer site could be covered"
        );
        assert!(TelecastError::UnknownView(ViewId::new(3))
            .to_string()
            .contains("v3"));
    }
}

//! Session-wide measurements — the quantities the paper's figures plot.

use telecast_sim::{Cdf, Counter, Histogram, SimTime, TimeSeries};

/// Accumulated counters and samples of one session run.
#[derive(Debug, Clone)]
pub struct SessionMetrics {
    /// Streams requested across all join attempts (`N_total`).
    pub requested_streams: Counter,
    /// Streams accepted at admission (`N_accepted`).
    pub accepted_streams: Counter,
    /// Viewers admitted (≥ one stream per site).
    pub admitted_viewers: Counter,
    /// Viewers rejected at admission.
    pub rejected_viewers: Counter,
    /// Join delay samples in milliseconds (Fig. 14(c)).
    pub join_delays_ms: Histogram,
    /// View-change delay samples in milliseconds (Fig. 14(c)).
    pub view_change_delays_ms: Histogram,
    /// Switch-latency samples in milliseconds: leave-old-tree →
    /// first-frame-on-new-tree (the CDN fast path of §VI). Unlike
    /// [`SessionMetrics::view_change_delays_ms`] this excludes the
    /// request→teardown control-plane time.
    pub switch_latency_ms: Histogram,
    /// View changes whose CDN fast path granted no temporary lease —
    /// the first frame of the new view waits for the background join.
    pub switch_starved: Counter,
    /// Wasted subtree bandwidth, in kbps·ms: old-view bandwidth still
    /// flowing to a switching viewer between its view-change request
    /// and the old tree's teardown (see
    /// [`SessionMetrics::wasted_mbps_hours`]).
    pub wasted_subtree_kbps_ms: Counter,
    /// CDN-rooted tree fragments folded under P2P parents by the prune
    /// pass (each fold returns one CDN serve to the pool).
    pub fragments_merged: Counter,
    /// Drained view groups retired by the prune pass.
    pub groups_retired: Counter,
    /// CDN capacity returned to the pool by prune merges, in kbps.
    pub prune_reclaimed_kbps: Counter,
    /// Subscription-protocol messages sent (overhead).
    pub subscription_messages: Counter,
    /// Push-down displacements performed by Algorithm 1.
    pub displacements: Counter,
    /// Streams dropped because their layer exceeded the admissible
    /// maximum.
    pub layer_drops: Counter,
    /// Victim viewers produced by departures and view changes.
    pub victims: Counter,
    /// Victims recovered into a P2P position (vs staying on the CDN).
    pub victims_repositioned: Counter,
    /// CDN outbound usage over time, in Mbps (Fig. 13(a) reports the
    /// peak).
    pub cdn_usage_mbps: TimeSeries,
    /// *Provisioned* CDN outbound capacity over time, in Mbps — a flat
    /// line for the paper's static pool, a staircase tracking demand
    /// under autoscaling. With per-region pools this is the aggregate
    /// (the sum over [`SessionMetrics::provisioned_by_slot`]).
    pub provisioned_cdn_mbps: TimeSeries,
    /// Per-pool-slot provisioned capacity over time, in Mbps — one
    /// series per regional pool (a single entry mirroring the aggregate
    /// under the global pool scope). Grown lazily to the slot count.
    pub provisioned_by_slot: Vec<TimeSeries>,
    /// CDN pool utilisation (used / provisioned) over time, sampled by
    /// the GSC monitor event.
    pub cdn_utilisation: TimeSeries,
    /// Connected population over time, sampled by the GSC monitor event.
    pub population: TimeSeries,
    /// Times the subscription-chain damping cap was hit (should stay 0).
    pub resync_cap_hits: Counter,
    /// Viewers admitted by the churn runtime (arrival events that issued
    /// a join).
    pub churn_arrivals: Counter,
    /// Churn dwell expiries that departed gracefully.
    pub churn_departures: Counter,
    /// Churn dwell expiries that failed abruptly.
    pub churn_failures: Counter,
    /// Autoscale actions that grew the CDN pool.
    pub autoscale_ups: Counter,
    /// Autoscale actions that shrank the CDN pool.
    pub autoscale_downs: Counter,
    /// Parked CDN-rejected joins retried after a scale-up.
    pub join_retries: Counter,
    /// Cross-shard CDN spill requests emitted (sharded runtime only):
    /// foreground joins the local regional pool could not serve, offered
    /// to a foreign shard's pool at the next epoch barrier.
    pub spill_requests: Counter,
    /// Spill requests a donor shard's pool admitted.
    pub spill_admits: Counter,
    /// Foreign-lease batches returned to their donor shard when a
    /// spill-served viewer departed.
    pub spill_releases: Counter,
    /// Per-slot forecast error of the predictive autoscaler, in Mbps:
    /// each sample is `forecast − realised` reserved demand, recorded
    /// when a forecast's horizon comes due (positive = over-forecast).
    /// Empty on reactive controllers.
    pub forecast_error_by_slot: Vec<TimeSeries>,
    /// Deepest the event heap has ever been — the queue-pressure figure
    /// a capacity plan needs.
    pub peak_event_queue: u64,
    /// Most CDN-rejected joins ever parked for retry at once.
    pub peak_retry_queue: u64,
}

impl Default for SessionMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        SessionMetrics {
            requested_streams: Counter::new("requested_streams"),
            accepted_streams: Counter::new("accepted_streams"),
            admitted_viewers: Counter::new("admitted_viewers"),
            rejected_viewers: Counter::new("rejected_viewers"),
            join_delays_ms: Histogram::new(),
            view_change_delays_ms: Histogram::new(),
            switch_latency_ms: Histogram::new(),
            switch_starved: Counter::new("switch_starved"),
            wasted_subtree_kbps_ms: Counter::new("wasted_subtree_kbps_ms"),
            fragments_merged: Counter::new("fragments_merged"),
            groups_retired: Counter::new("groups_retired"),
            prune_reclaimed_kbps: Counter::new("prune_reclaimed_kbps"),
            subscription_messages: Counter::new("subscription_messages"),
            displacements: Counter::new("displacements"),
            layer_drops: Counter::new("layer_drops"),
            victims: Counter::new("victims"),
            victims_repositioned: Counter::new("victims_repositioned"),
            cdn_usage_mbps: TimeSeries::new(),
            provisioned_cdn_mbps: TimeSeries::new(),
            provisioned_by_slot: Vec::new(),
            cdn_utilisation: TimeSeries::new(),
            population: TimeSeries::new(),
            resync_cap_hits: Counter::new("resync_cap_hits"),
            churn_arrivals: Counter::new("churn_arrivals"),
            churn_departures: Counter::new("churn_departures"),
            churn_failures: Counter::new("churn_failures"),
            autoscale_ups: Counter::new("autoscale_ups"),
            autoscale_downs: Counter::new("autoscale_downs"),
            join_retries: Counter::new("join_retries"),
            spill_requests: Counter::new("spill_requests"),
            spill_admits: Counter::new("spill_admits"),
            spill_releases: Counter::new("spill_releases"),
            forecast_error_by_slot: Vec::new(),
            peak_event_queue: 0,
            peak_retry_queue: 0,
        }
    }

    /// The acceptance ratio `ρ = N_accepted / N_total` (1 if nothing was
    /// requested).
    pub fn acceptance_ratio(&self) -> f64 {
        let total = self.requested_streams.value();
        if total == 0 {
            1.0
        } else {
            self.accepted_streams.value() as f64 / total as f64
        }
    }

    /// Peak CDN outbound usage observed, in Mbps.
    pub fn peak_cdn_mbps(&self) -> f64 {
        self.cdn_usage_mbps.peak()
    }

    /// Records a CDN usage sample. The series is a step function, so
    /// consecutive identical values collapse into the first sample —
    /// long churn runs would otherwise accumulate one point per protocol
    /// event.
    pub fn sample_cdn_usage(&mut self, at: SimTime, mbps: f64) {
        if self.cdn_usage_mbps.last() == Some(mbps) {
            return;
        }
        self.cdn_usage_mbps.record(at, mbps);
    }

    /// Records a connected-population sample (GSC monitor event).
    pub fn sample_population(&mut self, at: SimTime, viewers: f64) {
        self.population.record(at, viewers);
    }

    /// Records a provisioned-capacity sample. Like the usage series this
    /// is a step function — consecutive identical values collapse into
    /// the first sample.
    pub fn sample_provisioned(&mut self, at: SimTime, mbps: f64) {
        if self.provisioned_cdn_mbps.last() == Some(mbps) {
            return;
        }
        self.provisioned_cdn_mbps.record(at, mbps);
    }

    /// Records a CDN pool utilisation sample (GSC monitor event).
    pub fn sample_cdn_utilisation(&mut self, at: SimTime, fraction: f64) {
        self.cdn_utilisation.record(at, fraction);
    }

    /// Records a per-slot provisioned-capacity sample, growing the slot
    /// list as needed. Step-function semantics like the aggregate:
    /// consecutive identical values collapse into the first sample.
    pub fn sample_provisioned_slot(&mut self, slot: usize, at: SimTime, mbps: f64) {
        if self.provisioned_by_slot.len() <= slot {
            self.provisioned_by_slot
                .resize_with(slot + 1, TimeSeries::new);
        }
        let series = &mut self.provisioned_by_slot[slot];
        if series.last() == Some(mbps) {
            return;
        }
        series.record(at, mbps);
    }

    /// Records a matured forecast's error for one pool slot, growing
    /// the slot list as needed. `error_mbps` is forecast − realised.
    pub fn sample_forecast_error(&mut self, slot: usize, at: SimTime, error_mbps: f64) {
        if self.forecast_error_by_slot.len() <= slot {
            self.forecast_error_by_slot
                .resize_with(slot + 1, TimeSeries::new);
        }
        self.forecast_error_by_slot[slot].record(at, error_mbps);
    }

    /// Mean absolute forecast error across every slot's matured
    /// forecasts, in Mbps; `None` when no forecast has matured (e.g. a
    /// reactive controller).
    pub fn mean_abs_forecast_error_mbps(&self) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for series in &self.forecast_error_by_slot {
            for &(_, error) in series.points() {
                sum += error.abs();
                n += 1;
            }
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// CDF of join delays (milliseconds).
    pub fn join_delay_cdf(&self) -> Cdf {
        self.join_delays_ms.cdf()
    }

    /// CDF of view-change delays (milliseconds).
    pub fn view_change_delay_cdf(&self) -> Cdf {
        self.view_change_delays_ms.cdf()
    }

    /// CDF of switch latencies (milliseconds).
    pub fn switch_latency_cdf(&self) -> Cdf {
        self.switch_latency_ms.cdf()
    }

    /// Wasted subtree bandwidth in Mbps·hours — the figure-friendly
    /// unit of [`SessionMetrics::wasted_subtree_kbps_ms`]
    /// (1 Mbps·hour = 1000 kbps × 3 600 000 ms).
    pub fn wasted_mbps_hours(&self) -> f64 {
        self.wasted_subtree_kbps_ms.value() as f64 / 3.6e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acceptance_ratio_division() {
        let mut m = SessionMetrics::new();
        assert_eq!(m.acceptance_ratio(), 1.0);
        m.requested_streams.add(10);
        m.accepted_streams.add(7);
        assert!((m.acceptance_ratio() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn cdn_peak_tracks_series() {
        let mut m = SessionMetrics::new();
        m.sample_cdn_usage(SimTime::from_secs(1), 100.0);
        m.sample_cdn_usage(SimTime::from_secs(2), 450.0);
        m.sample_cdn_usage(SimTime::from_secs(3), 20.0);
        assert_eq!(m.peak_cdn_mbps(), 450.0);
    }

    #[test]
    fn wasted_bandwidth_unit_conversion() {
        let mut m = SessionMetrics::new();
        // 2000 kbps wasted for 1.8e6 ms = 2 Mbps for half an hour.
        m.wasted_subtree_kbps_ms.add(2_000 * 1_800_000);
        assert!((m.wasted_mbps_hours() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn delay_cdfs_are_exposed() {
        let mut m = SessionMetrics::new();
        m.join_delays_ms.record(250.0);
        m.join_delays_ms.record(750.0);
        let cdf = m.join_delay_cdf();
        assert!((cdf.fraction_at(500.0) - 0.5).abs() < 1e-9);
    }
}

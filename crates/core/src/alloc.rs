//! Viewer bandwidth allocation (paper §IV-B1).
//!
//! Inbound: streams are granted their required bandwidth in global
//! priority order while (1) inbound capacity remains and (2) some supply
//! (P2P slot or CDN headroom) exists; the first violation truncates the
//! request (lower-priority streams are dropped).
//!
//! Outbound: the accepted streams share the viewer's upload capacity.
//! The paper's **round-robin in priority order** grants one out-link
//! ("slot") per stream per pass. With uniform stream rates — the 3DTI
//! setting, where every camera encodes at the same bitrate — this
//! guarantees that a higher-priority stream never ends up with less
//! allocated outbound than a lower-priority one (`abw(S_hi) ≥
//! abw(S_lo)`), the invariant behind the Overlay Property. With
//! heterogeneous rates the guarantee degrades to slot-count fairness: a
//! cheap low-priority stream may absorb leftover capacity a costly
//! high-priority one cannot use. The alternative policies of Fig. 8's
//! trade-off are provided as ablations.

use telecast_media::{PrioritizedStream, StreamId};
use telecast_net::Bandwidth;

use crate::config::OutboundPolicy;

/// Result of the inbound allocation step.
#[derive(Debug, Clone, PartialEq)]
pub struct InboundPlan {
    /// Accepted streams, still in global priority order.
    pub accepted: Vec<PrioritizedStream>,
    /// Total inbound bandwidth the accepted streams consume.
    pub inbound_used: Bandwidth,
}

/// Allocates the viewer's inbound capacity over `streams` (which must be
/// in global priority order, most important first).
///
/// `supply_available` reports whether the P2P layer or the CDN currently
/// has outbound headroom for a stream — condition (2) of the paper.
pub fn allocate_inbound(
    streams: &[PrioritizedStream],
    inbound: Bandwidth,
    mut supply_available: impl FnMut(StreamId, Bandwidth) -> bool,
) -> InboundPlan {
    let mut accepted = Vec::new();
    let mut used = Bandwidth::ZERO;
    for s in streams {
        let bw = Bandwidth::from_kbps(s.bitrate_kbps);
        if used + bw > inbound || !supply_available(s.stream, bw) {
            break; // first violation truncates the request
        }
        used += bw;
        accepted.push(*s);
    }
    InboundPlan {
        accepted,
        inbound_used: used,
    }
}

/// Whether `accepted` covers every one of the `site_count` producer sites
/// — the admission constraint `N_accepted ≥ n` ("at least the highest
/// priority stream of each local view").
pub fn covers_all_sites(accepted: &[PrioritizedStream], site_count: usize) -> bool {
    let mut seen = vec![false; site_count];
    for s in accepted {
        let idx = s.stream.site().index();
        if idx < site_count {
            seen[idx] = true;
        }
    }
    seen.iter().all(|&b| b)
}

/// Result of the outbound allocation step: out-link slots per accepted
/// stream (same order as the accepted list) and the capacity consumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutboundPlan {
    /// `(stream, granted slots)` in priority order.
    pub slots: Vec<(StreamId, u32)>,
    /// Total outbound bandwidth backing those slots.
    pub outbound_used: Bandwidth,
}

impl OutboundPlan {
    /// Granted out-degree for `stream` (0 if not listed).
    pub fn out_degree(&self, stream: StreamId) -> u32 {
        self.slots
            .iter()
            .find(|(s, _)| *s == stream)
            .map(|&(_, d)| d)
            .unwrap_or(0)
    }
}

/// Allocates the viewer's outbound capacity across the accepted streams
/// under the chosen policy.
pub fn allocate_outbound(
    accepted: &[PrioritizedStream],
    outbound: Bandwidth,
    policy: OutboundPolicy,
) -> OutboundPlan {
    let mut slots: Vec<(StreamId, u32)> = accepted.iter().map(|s| (s.stream, 0)).collect();
    let mut remaining = outbound;
    match policy {
        OutboundPolicy::RoundRobin => loop {
            let mut granted_this_pass = false;
            for (i, s) in accepted.iter().enumerate() {
                let bw = Bandwidth::from_kbps(s.bitrate_kbps);
                if bw <= remaining && !bw.is_zero() {
                    slots[i].1 += 1;
                    remaining -= bw;
                    granted_this_pass = true;
                }
            }
            if !granted_this_pass {
                break;
            }
        },
        OutboundPolicy::PriorityFirst => {
            for (i, s) in accepted.iter().enumerate() {
                let bw = Bandwidth::from_kbps(s.bitrate_kbps);
                if bw.is_zero() {
                    continue;
                }
                let n = remaining / bw;
                slots[i].1 = u32::try_from(n).unwrap_or(u32::MAX);
                remaining -= bw * n;
            }
        }
        OutboundPolicy::EqualSplit => {
            if !accepted.is_empty() {
                let share = Bandwidth::from_kbps(outbound.as_kbps() / accepted.len() as u64);
                for (i, s) in accepted.iter().enumerate() {
                    let bw = Bandwidth::from_kbps(s.bitrate_kbps);
                    if bw.is_zero() {
                        continue;
                    }
                    let n = share / bw;
                    slots[i].1 = u32::try_from(n).unwrap_or(u32::MAX);
                    remaining -= bw * n;
                }
            }
        }
    }
    OutboundPlan {
        slots,
        outbound_used: outbound - remaining,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telecast_media::{SiteId, StreamId};

    fn ps(site: u16, camera: u16, eta: u32, df: f64) -> PrioritizedStream {
        PrioritizedStream {
            stream: StreamId::new(SiteId::new(site), camera),
            df,
            eta,
            bitrate_kbps: 2_000,
        }
    }

    /// The paper's 6-stream view: interleaved priorities across 2 sites.
    fn six_streams() -> Vec<PrioritizedStream> {
        vec![
            ps(0, 0, 1, 1.0),
            ps(1, 0, 1, 0.9),
            ps(0, 1, 2, 0.7),
            ps(1, 1, 2, 0.7),
            ps(0, 7, 3, 0.7),
            ps(1, 7, 3, 0.6),
        ]
    }

    #[test]
    fn inbound_accepts_exact_fit() {
        // 12 Mbps fits exactly six 2 Mbps streams.
        let plan = allocate_inbound(&six_streams(), Bandwidth::from_mbps(12), |_, _| true);
        assert_eq!(plan.accepted.len(), 6);
        assert_eq!(plan.inbound_used, Bandwidth::from_mbps(12));
    }

    #[test]
    fn inbound_truncates_at_capacity() {
        let plan = allocate_inbound(&six_streams(), Bandwidth::from_mbps(7), |_, _| true);
        assert_eq!(plan.accepted.len(), 3);
        assert_eq!(plan.inbound_used, Bandwidth::from_mbps(6));
        // Kept the three highest priorities.
        assert_eq!(plan.accepted[0].stream, StreamId::new(SiteId::new(0), 0));
        assert_eq!(plan.accepted[2].stream, StreamId::new(SiteId::new(0), 1));
    }

    #[test]
    fn inbound_stops_at_first_supply_gap() {
        // Third stream has no supply: everything after it is dropped too.
        let blocked = StreamId::new(SiteId::new(0), 1);
        let plan = allocate_inbound(&six_streams(), Bandwidth::from_mbps(12), |s, _| {
            s != blocked
        });
        assert_eq!(plan.accepted.len(), 2);
    }

    #[test]
    fn inbound_zero_capacity_accepts_nothing() {
        let plan = allocate_inbound(&six_streams(), Bandwidth::ZERO, |_, _| true);
        assert!(plan.accepted.is_empty());
        assert_eq!(plan.inbound_used, Bandwidth::ZERO);
    }

    #[test]
    fn site_coverage_detects_missing_site() {
        let both = six_streams();
        assert!(covers_all_sites(&both[..2], 2));
        assert!(!covers_all_sites(&both[..1], 2));
        assert!(!covers_all_sites(&[], 2));
        assert!(covers_all_sites(&[], 0));
    }

    #[test]
    fn round_robin_matches_fig9() {
        // Fig. 9: 10 Mbps over three 2 Mbps streams → oDeg 2, 2, 1.
        let streams = &six_streams()[..3];
        let plan = allocate_outbound(
            streams,
            Bandwidth::from_mbps(10),
            OutboundPolicy::RoundRobin,
        );
        let degs: Vec<u32> = plan.slots.iter().map(|&(_, d)| d).collect();
        assert_eq!(degs, vec![2, 2, 1]);
        assert_eq!(plan.outbound_used, Bandwidth::from_mbps(10));
    }

    #[test]
    fn round_robin_is_priority_monotone() {
        for mbps in 0..=14 {
            let plan = allocate_outbound(
                &six_streams(),
                Bandwidth::from_mbps(mbps),
                OutboundPolicy::RoundRobin,
            );
            let degs: Vec<u32> = plan.slots.iter().map(|&(_, d)| d).collect();
            assert!(
                degs.windows(2).all(|w| w[0] >= w[1]),
                "non-monotone degrees {degs:?} at {mbps} Mbps"
            );
            // Spread at most 1 for uniform bitrates.
            let (min, max) = (degs.iter().min().unwrap(), degs.iter().max().unwrap());
            assert!(max - min <= 1);
        }
    }

    #[test]
    fn priority_first_starves_the_tail() {
        let plan = allocate_outbound(
            &six_streams(),
            Bandwidth::from_mbps(6),
            OutboundPolicy::PriorityFirst,
        );
        let degs: Vec<u32> = plan.slots.iter().map(|&(_, d)| d).collect();
        assert_eq!(degs, vec![3, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn equal_split_divides_capacity() {
        let plan = allocate_outbound(
            &six_streams()[..3],
            Bandwidth::from_mbps(12),
            OutboundPolicy::EqualSplit,
        );
        let degs: Vec<u32> = plan.slots.iter().map(|&(_, d)| d).collect();
        assert_eq!(degs, vec![2, 2, 2]);
    }

    #[test]
    fn equal_split_wastes_fragmented_capacity() {
        // 10 Mbps over 3 streams → 3.33 Mbps shares → 1 slot each; 4 Mbps idle.
        let plan = allocate_outbound(
            &six_streams()[..3],
            Bandwidth::from_mbps(10),
            OutboundPolicy::EqualSplit,
        );
        let degs: Vec<u32> = plan.slots.iter().map(|&(_, d)| d).collect();
        assert_eq!(degs, vec![1, 1, 1]);
        assert_eq!(plan.outbound_used, Bandwidth::from_mbps(6));
    }

    #[test]
    fn outbound_zero_capacity_grants_nothing() {
        for policy in [
            OutboundPolicy::RoundRobin,
            OutboundPolicy::PriorityFirst,
            OutboundPolicy::EqualSplit,
        ] {
            let plan = allocate_outbound(&six_streams(), Bandwidth::ZERO, policy);
            assert!(plan.slots.iter().all(|&(_, d)| d == 0));
            assert_eq!(plan.outbound_used, Bandwidth::ZERO);
        }
    }

    #[test]
    fn outbound_empty_streams() {
        let plan = allocate_outbound(&[], Bandwidth::from_mbps(10), OutboundPolicy::RoundRobin);
        assert!(plan.slots.is_empty());
        assert_eq!(plan.outbound_used, Bandwidth::ZERO);
    }

    #[test]
    fn out_degree_lookup() {
        let plan = allocate_outbound(
            &six_streams()[..3],
            Bandwidth::from_mbps(10),
            OutboundPolicy::RoundRobin,
        );
        assert_eq!(plan.out_degree(StreamId::new(SiteId::new(0), 0)), 2);
        assert_eq!(plan.out_degree(StreamId::new(SiteId::new(1), 7)), 0);
    }

    #[test]
    fn allocated_outbound_respects_priority_invariant() {
        // abw(S_hi) ≥ abw(S_lo): in allocated bandwidth, not just slots.
        let plan = allocate_outbound(
            &six_streams(),
            Bandwidth::from_mbps(9),
            OutboundPolicy::RoundRobin,
        );
        let alloc: Vec<u64> = plan
            .slots
            .iter()
            .zip(six_streams())
            .map(|(&(_, d), s)| d as u64 * s.bitrate_kbps)
            .collect();
        assert!(alloc.windows(2).all(|w| w[0] >= w[1]));
    }
}

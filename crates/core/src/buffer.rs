//! The viewer's local buffer and cache (paper §V-B2, Fig. 11).
//!
//! Each stream has a local buffer split at the **Media Playback Point
//! (MPP)**: frames younger than `dbuff` (since receipt) sit between buffer
//! end and MPP and are eligible for playback; older frames sit in the
//! cache for `dcache` and remain available to feed child viewers
//! (delayed-receive subscriptions); beyond that they are discarded.

use std::collections::{HashMap, VecDeque};

use telecast_media::{Frame, FrameNumber, StreamId};
use telecast_sim::{SimDuration, SimTime};

#[derive(Debug, Clone, Copy, PartialEq)]
struct Slot {
    frame: Frame,
    received_at: SimTime,
}

/// Frame store of one viewer: per-stream buffer + cache.
///
/// ```
/// use telecast::ViewerBuffer;
/// use telecast_media::{Frame, FrameNumber, SiteId, StreamId};
/// use telecast_sim::{SimDuration, SimTime};
///
/// let stream = StreamId::new(SiteId::new(0), 0);
/// let mut buf = ViewerBuffer::new(SimDuration::from_millis(300), SimDuration::from_secs(25));
/// buf.receive(
///     Frame { stream, number: FrameNumber::ZERO, captured_at: SimTime::ZERO, bytes: 25_000 },
///     SimTime::from_secs(60),
/// );
/// assert_eq!(buf.buffered(stream, SimTime::from_secs(60)).count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ViewerBuffer {
    dbuff: SimDuration,
    dcache: SimDuration,
    streams: HashMap<StreamId, VecDeque<Slot>>,
}

impl ViewerBuffer {
    /// Creates an empty buffer with the given buffer and cache lengths.
    pub fn new(dbuff: SimDuration, dcache: SimDuration) -> Self {
        ViewerBuffer {
            dbuff,
            dcache,
            streams: HashMap::new(),
        }
    }

    /// The buffer length `dbuff`.
    pub fn dbuff(&self) -> SimDuration {
        self.dbuff
    }

    /// The cache length `dcache`.
    pub fn dcache(&self) -> SimDuration {
        self.dcache
    }

    /// Stores a received frame.
    pub fn receive(&mut self, frame: Frame, at: SimTime) {
        self.streams
            .entry(frame.stream)
            .or_default()
            .push_back(Slot {
                frame,
                received_at: at,
            });
    }

    /// Discards frames older than `dbuff + dcache` (past the buffer
    /// head). Returns how many were discarded.
    pub fn evict_expired(&mut self, now: SimTime) -> usize {
        let horizon = self.dbuff + self.dcache;
        let mut evicted = 0;
        for q in self.streams.values_mut() {
            while let Some(slot) = q.front() {
                if now.saturating_since(slot.received_at) > horizon {
                    q.pop_front();
                    evicted += 1;
                } else {
                    break;
                }
            }
        }
        evicted
    }

    /// Frames currently between buffer end and MPP (received within
    /// `dbuff`) — the playback-eligible set.
    pub fn buffered(&self, stream: StreamId, now: SimTime) -> impl Iterator<Item = &Frame> {
        let dbuff = self.dbuff;
        self.streams
            .get(&stream)
            .into_iter()
            .flatten()
            .filter(move |slot| now.saturating_since(slot.received_at) <= dbuff)
            .map(|slot| &slot.frame)
    }

    /// Frames currently in the cache (older than `dbuff`, not yet
    /// expired) — available for child subscriptions but not playback.
    pub fn cached(&self, stream: StreamId, now: SimTime) -> impl Iterator<Item = &Frame> {
        let (dbuff, horizon) = (self.dbuff, self.dbuff + self.dcache);
        self.streams
            .get(&stream)
            .into_iter()
            .flatten()
            .filter(move |slot| {
                let age = now.saturating_since(slot.received_at);
                age > dbuff && age <= horizon
            })
            .map(|slot| &slot.frame)
    }

    /// A specific frame, if held anywhere (buffer or cache) — what a
    /// parent consults to serve a subscription point.
    pub fn frame(&self, stream: StreamId, number: FrameNumber) -> Option<&Frame> {
        self.streams
            .get(&stream)?
            .iter()
            .map(|slot| &slot.frame)
            .find(|f| f.number == number)
    }

    /// **Synchronous render check**: the newest capture instant `t*` such
    /// that every stream in `expected` holds a buffered frame captured
    /// within `dskew` of `t*`. Returns the rendered set, one frame per
    /// stream. This is what the renderer does at the MPP; the delay-layer
    /// machinery exists to make it succeed.
    pub fn try_render(
        &self,
        expected: &[StreamId],
        now: SimTime,
        dskew: SimDuration,
    ) -> Option<Vec<Frame>> {
        if expected.is_empty() {
            return Some(Vec::new());
        }
        // Candidate anchors: buffered capture times of the first stream,
        // newest first.
        let mut anchors: Vec<SimTime> = self
            .buffered(expected[0], now)
            .map(|f| f.captured_at)
            .collect();
        anchors.sort_unstable_by(|a, b| b.cmp(a));
        'anchor: for &t_star in &anchors {
            let mut rendered = Vec::with_capacity(expected.len());
            for &s in expected {
                let hit = self
                    .buffered(s, now)
                    .filter(|f| {
                        f.captured_at.as_micros().abs_diff(t_star.as_micros()) <= dskew.as_micros()
                    })
                    .min_by_key(|f| f.captured_at.as_micros().abs_diff(t_star.as_micros()));
                match hit {
                    Some(f) => rendered.push(*f),
                    None => continue 'anchor,
                }
            }
            return Some(rendered);
        }
        None
    }

    /// Total frames held across all streams.
    pub fn len(&self) -> usize {
        self.streams.values().map(|q| q.len()).sum()
    }

    /// Whether no frames are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telecast_media::SiteId;

    fn sid(c: u16) -> StreamId {
        StreamId::new(SiteId::new(0), c)
    }

    fn frame(stream: StreamId, n: u64, captured_ms: u64) -> Frame {
        Frame {
            stream,
            number: FrameNumber::new(n),
            captured_at: SimTime::from_millis(captured_ms),
            bytes: 25_000,
        }
    }

    fn buf() -> ViewerBuffer {
        ViewerBuffer::new(SimDuration::from_millis(300), SimDuration::from_secs(25))
    }

    #[test]
    fn frames_move_buffer_to_cache_to_discard() {
        let mut b = buf();
        let s = sid(0);
        b.receive(frame(s, 0, 0), SimTime::from_secs(60));
        // Fresh: in buffer.
        let now = SimTime::from_secs(60);
        assert_eq!(b.buffered(s, now).count(), 1);
        assert_eq!(b.cached(s, now).count(), 0);
        // After dbuff: in cache.
        let now = SimTime::from_millis(60_400);
        assert_eq!(b.buffered(s, now).count(), 0);
        assert_eq!(b.cached(s, now).count(), 1);
        // After dbuff + dcache: evicted.
        let now = SimTime::from_millis(60_000 + 300 + 25_000 + 1);
        let mut b2 = b.clone();
        assert_eq!(b2.evict_expired(now), 1);
        assert!(b2.is_empty());
    }

    #[test]
    fn cached_frames_serve_subscription_lookups() {
        let mut b = buf();
        let s = sid(0);
        for n in 0..5 {
            b.receive(frame(s, n, 100 * n), SimTime::from_millis(60_000 + 100 * n));
        }
        assert!(b.frame(s, FrameNumber::new(3)).is_some());
        assert!(b.frame(s, FrameNumber::new(9)).is_none());
    }

    #[test]
    fn render_succeeds_when_skew_within_dbuff() {
        let mut b = buf();
        let (s1, s2) = (sid(0), sid(1));
        // Correlated frames captured together, received 100 ms apart —
        // within the 300 ms buffer.
        b.receive(frame(s1, 10, 1_000), SimTime::from_millis(61_000));
        b.receive(frame(s2, 10, 1_000), SimTime::from_millis(61_100));
        let rendered = b
            .try_render(
                &[s1, s2],
                SimTime::from_millis(61_150),
                SimDuration::from_millis(1),
            )
            .expect("synchronous render");
        assert_eq!(rendered.len(), 2);
        assert!(rendered
            .iter()
            .all(|f| f.captured_at == SimTime::from_millis(1_000)));
    }

    #[test]
    fn render_fails_when_one_stream_lags_past_dbuff() {
        let mut b = buf();
        let (s1, s2) = (sid(0), sid(1));
        b.receive(frame(s1, 10, 1_000), SimTime::from_millis(61_000));
        // s2's correlated frame arrives 400 ms later: by then s1's copy
        // has left the buffer — the Fig. 7(a) view synchronization problem.
        b.receive(frame(s2, 10, 1_000), SimTime::from_millis(61_400));
        assert!(b
            .try_render(
                &[s1, s2],
                SimTime::from_millis(61_450),
                SimDuration::from_millis(1)
            )
            .is_none());
    }

    #[test]
    fn render_prefers_newest_anchor() {
        let mut b = buf();
        let s1 = sid(0);
        b.receive(frame(s1, 10, 1_000), SimTime::from_millis(61_000));
        b.receive(frame(s1, 11, 1_100), SimTime::from_millis(61_100));
        let rendered = b
            .try_render(&[s1], SimTime::from_millis(61_150), SimDuration::ZERO)
            .unwrap();
        assert_eq!(rendered[0].number, FrameNumber::new(11));
    }

    #[test]
    fn render_with_no_expected_streams_is_trivial() {
        let b = buf();
        assert_eq!(
            b.try_render(&[], SimTime::ZERO, SimDuration::ZERO),
            Some(vec![])
        );
    }

    #[test]
    fn render_tolerates_skew_within_dskew() {
        let mut b = buf();
        let (s1, s2) = (sid(0), sid(1));
        // Captures 30 ms apart — within a 50 ms dskew.
        b.receive(frame(s1, 10, 1_000), SimTime::from_millis(61_000));
        b.receive(frame(s2, 20, 1_030), SimTime::from_millis(61_000));
        assert!(b
            .try_render(
                &[s1, s2],
                SimTime::from_millis(61_010),
                SimDuration::from_millis(50)
            )
            .is_some());
        assert!(b
            .try_render(
                &[s1, s2],
                SimTime::from_millis(61_010),
                SimDuration::from_millis(10)
            )
            .is_none());
    }
}

//! The sharded session runtime: per-region parallel event loops with a
//! deterministic cross-shard merge.
//!
//! A [`ShardedSession`] splits the global viewer population into one
//! [`TelecastSession`] per [`Region`] (the same five-way split the
//! per-region CDN pools use), runs the shards on a persistent
//! [`WorkerPool`] (threads spawned once for the session's lifetime,
//! epochs dispatched longest-predicted-first from an EWMA cost model),
//! and synchronises them at a **time-epoch barrier**: every shard advances
//! its own event loop to the epoch boundary, cross-shard effects are
//! collected into per-shard outboxes, and the coordinator merges the
//! outboxes in the canonical `(time, shard_id, seq)` order before
//! applying them one by one. Because the shard count is fixed (five —
//! one per region), intra-epoch execution is single-threaded per shard,
//! and the merge order never mentions a thread id, the run is
//! **byte-identical for a given seed regardless of the worker count**:
//! `--threads` only maps shards onto OS threads.
//!
//! Two cross-shard effects exist today:
//!
//! * **CDN spill** — a foreground join the local regional pool rejected
//!   for capacity is offered to the foreign pool with the most headroom
//!   at the next barrier ([`ShardMessage::SpillRequest`]). The donor
//!   serves the view's streams from its own pool and the owner marks the
//!   viewer connected on those foreign leases.
//! * **Foreign release** — when a spill-served viewer departs, its
//!   foreign leases travel back to the donor shard for release
//!   ([`ShardMessage::ReleaseForeign`]).
//!
//! Wall-clock figures (`busy_ns`, `barrier_wait_ns` in [`ShardStats`])
//! are observability only — they never feed back into simulation state,
//! so they do not perturb determinism.

use std::collections::BTreeMap;

use std::sync::Arc;

use telecast_cdn::{
    split_capacity, CapacityBroker, CdnLease, PoolScope, TenantHandle, TenantQuota,
};
use telecast_media::ViewId;
use telecast_net::{NodeId, Region};
use telecast_sim::{
    merge_outboxes_into, EpochSchedule, FxHashSet, Outbox, OutboxEntry, SimDuration, SimTime,
    TimeSeries, WorkerPool,
};

use crate::config::SessionConfig;
use crate::metrics::SessionMetrics;
use crate::session::TelecastSession;

/// Salt mixed into each shard's seed so the five shards draw independent
/// random streams from one scenario seed (odd constant, multiplied by
/// `shard_id + 1` so no two shards share a seed).
const SHARD_SEED_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// A cross-shard effect, stamped into the emitting shard's outbox during
/// an epoch and applied by the coordinator at the barrier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ShardMessage {
    /// A foreground join the owning shard's regional pool rejected for
    /// capacity, offered to the foreign pool with the most headroom.
    SpillRequest {
        /// The rejected viewer (still parked on its owner shard).
        viewer: NodeId,
        /// The view it asked for.
        view: ViewId,
        /// Worst-case CDN demand of that view, in Kbps.
        demand_kbps: u64,
    },
    /// Leases held on a donor shard's pool by a spill-served viewer that
    /// has since departed; the donor must release them.
    ReleaseForeign {
        /// The shard whose pool holds the leases.
        donor: usize,
        /// The leases to release, in stream order.
        leases: Vec<CdnLease>,
    },
}

/// A viewer's foreign-pool serve: which shard donated and the leases it
/// holds there (owned by the viewer's home shard, released via a
/// [`ShardMessage::ReleaseForeign`] on departure).
#[derive(Debug)]
pub(crate) struct ForeignServe {
    /// Index of the donor shard.
    pub(crate) donor: usize,
    /// The donor-pool leases serving this viewer's view.
    pub(crate) leases: Vec<CdnLease>,
}

/// Sharded-mode context carried by a [`TelecastSession`] that runs as
/// one shard of a [`ShardedSession`].
#[derive(Debug)]
pub(crate) struct ShardState {
    /// The region whose viewers this shard owns.
    pub(crate) region: Region,
    /// Cross-shard effects emitted this epoch, in emission order.
    pub(crate) outbox: Outbox<ShardMessage>,
    /// Foreign serves held by this shard's viewers.
    pub(crate) foreign: BTreeMap<NodeId, ForeignServe>,
    /// Viewers with a spill request in flight (emitted but not yet
    /// answered at a barrier) — guards against duplicate requests.
    pub(crate) spill_pending: FxHashSet<NodeId>,
}

impl ShardState {
    pub(crate) fn new(id: usize, region: Region) -> Self {
        ShardState {
            region,
            outbox: Outbox::new(id),
            foreign: BTreeMap::new(),
            spill_pending: FxHashSet::default(),
        }
    }
}

/// Per-shard observability exported next to the merged metrics.
///
/// `events_processed`, `cross_shard_messages`, `viewers`, and
/// `peak_event_queue` are deterministic per seed; `busy_ns` and
/// `barrier_wait_ns` are wall-clock and vary run to run — keep them out
/// of any byte-compared artifact.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// The region this shard owns.
    pub region: Region,
    /// Viewers provisioned on this shard.
    pub viewers: usize,
    /// Events this shard's engine has fired.
    pub events_processed: u64,
    /// Cross-shard messages this shard emitted.
    pub cross_shard_messages: u64,
    /// Wall-clock nanoseconds this shard spent executing epochs.
    pub busy_ns: u64,
    /// Wall-clock nanoseconds this shard idled at barriers waiting for
    /// the slowest shard of each epoch.
    pub barrier_wait_ns: u64,
    /// Deepest this shard's event heap has ever been.
    pub peak_event_queue: u64,
}

impl ShardStats {
    /// Fraction of the runtime's epoch wall-clock this shard spent
    /// executing rather than idling at barriers:
    /// `busy / (busy + barrier wait)`. Wall-clock observability only —
    /// varies run to run. `0.0` before the first epoch.
    pub fn utilization(&self) -> f64 {
        let wall = self.busy_ns + self.barrier_wait_ns;
        if wall == 0 {
            0.0
        } else {
            self.busy_ns as f64 / wall as f64
        }
    }
}

/// The sharded session runtime: five per-region [`TelecastSession`]
/// event loops advancing in lock-step time epochs on a worker pool, with
/// cross-shard effects merged deterministically at each barrier.
///
/// ```
/// use telecast::{SessionConfig, ShardedSession};
/// use telecast_sim::{SimDuration, SimTime};
///
/// let mut session = ShardedSession::new(
///     SessionConfig::default(),
///     500,
///     2,
///     SimDuration::from_secs(10),
/// );
/// session.start_churn(0.05, SimTime::from_secs(60));
/// session.run_until(SimTime::from_secs(60));
/// assert!(session.merged_metrics().churn_arrivals.value() > 0);
/// ```
pub struct ShardedSession {
    shards: Vec<TelecastSession>,
    /// Persistent worker pool: threads are spawned once here and reused
    /// by every epoch. Jobs are dispatched longest-predicted-first (an
    /// EWMA of each shard's measured busy time), which shortens the
    /// barrier without touching the output — results land by shard
    /// index, never by worker identity.
    pool: WorkerPool<TelecastSession, SimTime>,
    epoch: SimDuration,
    threads: usize,
    now: SimTime,
    stats: Vec<ShardStats>,
    spill_denied: u64,
    /// Reused per-shard outbox drain buffers ([`Outbox::take_into`]
    /// swaps allocations, so steady-state epochs drain without
    /// allocating).
    drain_bufs: Vec<Vec<OutboxEntry<ShardMessage>>>,
    /// Reused k-way merge output buffer.
    merge_buf: Vec<OutboxEntry<ShardMessage>>,
}

impl ShardedSession {
    /// Builds one shard per region from `config`: the global viewer
    /// population and the CDN pool are split by the region weights
    /// (remainders land on the first region, mirroring
    /// [`split_capacity`]), the autoscale policy — when present — is
    /// split the same way, and each shard's seed is forked from the
    /// scenario seed so the shards draw independent random streams.
    ///
    /// `threads` maps shards onto OS threads and **cannot change the
    /// output**; `epoch` is the barrier period (shorter epochs tighten
    /// cross-shard latency, longer ones amortise the barrier).
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid, `viewers` is zero, `threads` is
    /// zero, or `epoch` is zero.
    pub fn new(config: SessionConfig, viewers: usize, threads: usize, epoch: SimDuration) -> Self {
        assert!(viewers > 0, "sharded session needs viewers");
        assert!(threads > 0, "sharded session needs at least one thread");
        assert!(!epoch.is_zero(), "epoch must be positive");

        // Integer split by weight percent, remainder to the first region
        // — the same arithmetic `split_capacity` uses, so a shard's
        // population and its pool share stay proportional.
        let mut counts: Vec<usize> = Region::ALL
            .iter()
            .map(|r| viewers * r.weight_percent() as usize / 100)
            .collect();
        let assigned: usize = counts.iter().sum();
        counts[0] += viewers - assigned;

        let pool_split = split_capacity(config.cdn.outbound_capacity, PoolScope::PerRegion);
        let policy_split = config
            .autoscale
            .as_ref()
            .map(|p| p.split(PoolScope::PerRegion));

        // One broker owns every regional pool; each shard gets a
        // single-slot window onto its own region's slot. The broker's
        // per-region split is the same weight arithmetic as
        // `pool_split`, so every shard sees exactly the pool it owned
        // when it carried a private global-scope `Cdn`.
        let broker = CapacityBroker::shared(config.cdn.with_pool_scope(PoolScope::PerRegion));
        let tenant = broker
            .lock()
            .expect("fresh broker lock")
            .register(TenantQuota::FULL);

        let mut shards = Vec::with_capacity(Region::ALL.len());
        let mut stats = Vec::with_capacity(Region::ALL.len());
        for (id, &region) in Region::ALL.iter().enumerate() {
            let mut cfg = config.clone();
            cfg.cdn = cfg
                .cdn
                .with_outbound(pool_split[id])
                .with_pool_scope(PoolScope::Global);
            cfg.autoscale = policy_split.as_ref().map(|p| p[id]);
            cfg.seed = config.seed ^ SHARD_SEED_SALT.wrapping_mul(id as u64 + 1);
            let handle = TenantHandle::window(Arc::clone(&broker), tenant, id);
            let mut shard = TelecastSession::builder(cfg)
                .viewers_in(counts[id], region)
                .with_cdn_handle(handle)
                .build();
            shard.enable_sharding(id, region);
            shards.push(shard);
            stats.push(ShardStats {
                region,
                viewers: counts[id],
                events_processed: 0,
                cross_shard_messages: 0,
                busy_ns: 0,
                barrier_wait_ns: 0,
                peak_event_queue: 0,
            });
        }
        let shard_count = shards.len();
        let pool = WorkerPool::new(
            shard_count,
            threads,
            |_, shard: &mut TelecastSession, end| {
                shard.run_until(*end);
            },
        );
        ShardedSession {
            shards,
            pool,
            epoch,
            threads,
            now: SimTime::ZERO,
            stats,
            spill_denied: 0,
            drain_bufs: (0..shard_count).map(|_| Vec::new()).collect(),
            merge_buf: Vec::new(),
        }
    }

    /// Starts a steady-state churn runtime on every shard: each shard
    /// churns its own population at `churn_per_minute` (so the global
    /// process is the sum of five independent regional processes) and
    /// prefills to its full population.
    ///
    /// # Panics
    ///
    /// Panics if `churn_per_minute` is outside `(0, 1]` or a churn
    /// runtime is already installed on a shard.
    pub fn start_churn(&mut self, churn_per_minute: f64, horizon: SimTime) {
        for (id, shard) in self.shards.iter_mut().enumerate() {
            let population = self.stats[id].viewers;
            if population == 0 {
                continue;
            }
            let spec = telecast_media::ChurnSpec::steady_state(population, churn_per_minute);
            shard.start_churn(spec, horizon, population);
        }
    }

    /// Runs every shard to `deadline` in bounded time epochs: each epoch
    /// advances all shards to the boundary in parallel, then drains and
    /// merges their outboxes in `(time, shard_id, seq)` order and
    /// applies the cross-shard effects sequentially.
    pub fn run_until(&mut self, deadline: SimTime) {
        let boundaries: Vec<SimTime> = EpochSchedule::new(self.now, deadline, self.epoch).collect();
        for epoch_end in boundaries {
            self.run_epoch(epoch_end);
        }
        if deadline > self.now {
            self.now = deadline;
        }
    }

    fn run_epoch(&mut self, epoch_end: SimTime) {
        self.pool.run_epoch(&mut self.shards, epoch_end);
        let busy = self.pool.last_busy_ns();
        let slowest = busy.iter().copied().max().unwrap_or(0);
        for (id, &busy_ns) in busy.iter().enumerate() {
            self.stats[id].busy_ns += busy_ns;
            self.stats[id].barrier_wait_ns += slowest - busy_ns;
        }
        self.now = epoch_end;

        for (shard, buf) in self.shards.iter_mut().zip(self.drain_bufs.iter_mut()) {
            shard.shard_take_outbox_into(buf);
        }
        let mut merged = std::mem::take(&mut self.merge_buf);
        merge_outboxes_into(&mut self.drain_bufs, &mut merged);
        for entry in merged.drain(..) {
            self.stats[entry.from].cross_shard_messages += 1;
            self.apply(entry);
        }
        self.merge_buf = merged;
        for (id, shard) in self.shards.iter().enumerate() {
            self.stats[id].events_processed = shard.events_processed();
            self.stats[id].peak_event_queue = shard.metrics().peak_event_queue;
        }
    }

    /// Applies one merged cross-shard effect.
    fn apply(&mut self, entry: OutboxEntry<ShardMessage>) {
        match entry.msg {
            ShardMessage::SpillRequest {
                viewer,
                view,
                demand_kbps,
            } => {
                let from = entry.from;
                // Donor: the foreign pool with the most headroom that
                // can take the whole view; ties break on the lower
                // shard index to stay deterministic.
                let donor = (0..self.shards.len())
                    .filter(|&j| j != from)
                    .map(|j| (self.shards[j].shard_headroom_kbps(), j))
                    .filter(|&(headroom, _)| headroom >= demand_kbps)
                    .max_by_key(|&(headroom, j)| (headroom, std::cmp::Reverse(j)))
                    .map(|(_, j)| j);
                let Some(donor) = donor else {
                    self.spill_denied += 1;
                    self.shards[from].shard_spill_denied(viewer);
                    return;
                };
                let Some(leases) = self.shards[donor].shard_grant_view(view) else {
                    // Headroom was there but the grant still failed
                    // (e.g. per-stream packing); treat as denied.
                    self.spill_denied += 1;
                    self.shards[from].shard_spill_denied(viewer);
                    return;
                };
                if let Err(leases) =
                    self.shards[from].shard_apply_spill_grant(viewer, view, donor, leases)
                {
                    // The viewer moved on since the request (dwell
                    // expiry, re-join); hand the leases straight back.
                    self.shards[donor].shard_release_leases(leases);
                }
            }
            ShardMessage::ReleaseForeign { donor, leases } => {
                self.shards[donor].shard_release_leases(leases);
            }
        }
    }

    /// Merges the per-shard metrics into one global [`SessionMetrics`]:
    /// counters and histograms sum/concatenate in shard order, and the
    /// population / CDN-usage / provisioned step series are summed
    /// point-wise ([`telecast_sim::merge_step_sum`]).
    /// `provisioned_by_slot` carries one series per shard (its aggregate
    /// pool), and the utilisation series is left empty — a global
    /// used/provisioned ratio is not recoverable from per-shard samples
    /// taken at different instants.
    pub fn merged_metrics(&self) -> SessionMetrics {
        let mut merged = SessionMetrics::new();
        for shard in &self.shards {
            let m = shard.metrics();
            merged.requested_streams.add(m.requested_streams.value());
            merged.accepted_streams.add(m.accepted_streams.value());
            merged.admitted_viewers.add(m.admitted_viewers.value());
            merged.rejected_viewers.add(m.rejected_viewers.value());
            merged
                .subscription_messages
                .add(m.subscription_messages.value());
            merged.displacements.add(m.displacements.value());
            merged.layer_drops.add(m.layer_drops.value());
            merged.victims.add(m.victims.value());
            merged
                .victims_repositioned
                .add(m.victims_repositioned.value());
            merged.resync_cap_hits.add(m.resync_cap_hits.value());
            merged.churn_arrivals.add(m.churn_arrivals.value());
            merged.churn_departures.add(m.churn_departures.value());
            merged.churn_failures.add(m.churn_failures.value());
            merged.autoscale_ups.add(m.autoscale_ups.value());
            merged.autoscale_downs.add(m.autoscale_downs.value());
            merged.join_retries.add(m.join_retries.value());
            merged.spill_requests.add(m.spill_requests.value());
            merged.spill_admits.add(m.spill_admits.value());
            merged.spill_releases.add(m.spill_releases.value());
            for &v in m.join_delays_ms.sorted_samples() {
                merged.join_delays_ms.record(v);
            }
            for &v in m.view_change_delays_ms.sorted_samples() {
                merged.view_change_delays_ms.record(v);
            }
            merged.peak_event_queue = merged.peak_event_queue.max(m.peak_event_queue);
            merged.peak_retry_queue = merged.peak_retry_queue.max(m.peak_retry_queue);
        }
        let series = |f: fn(&SessionMetrics) -> &TimeSeries| -> TimeSeries {
            let parts: Vec<&TimeSeries> = self.shards.iter().map(|s| f(s.metrics())).collect();
            telecast_sim::merge_step_sum(&parts)
        };
        merged.population = series(|m| &m.population);
        merged.cdn_usage_mbps = series(|m| &m.cdn_usage_mbps);
        merged.provisioned_cdn_mbps = series(|m| &m.provisioned_cdn_mbps);
        merged.provisioned_by_slot = self
            .shards
            .iter()
            .map(|s| s.metrics().provisioned_cdn_mbps.clone())
            .collect();
        merged
    }

    /// Current virtual time (every shard's clock equals this at a
    /// barrier).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The barrier period.
    pub fn epoch(&self) -> SimDuration {
        self.epoch
    }

    /// Worker threads the shards are mapped onto.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The per-region shard sessions, in [`Region::ALL`] order.
    pub fn shards(&self) -> &[TelecastSession] {
        &self.shards
    }

    /// Per-shard observability, in [`Region::ALL`] order.
    pub fn stats(&self) -> &[ShardStats] {
        &self.stats
    }

    /// Spill requests no foreign pool could take.
    pub fn spill_denied(&self) -> u64 {
        self.spill_denied
    }

    /// Connected viewers across every shard.
    pub fn connected_viewers(&self) -> usize {
        self.shards.iter().map(|s| s.connected_viewers()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SessionConfig;
    use telecast_cdn::CdnConfig;

    fn small_config(seed: u64) -> SessionConfig {
        SessionConfig {
            cdn: CdnConfig::default().with_outbound(telecast_net::Bandwidth::from_mbps(2_000)),
            monitor_period: Some(SimDuration::from_secs(10)),
            seed,
            ..SessionConfig::default()
        }
    }

    fn run_small(seed: u64, threads: usize) -> (SessionMetrics, Vec<ShardStats>) {
        let mut s =
            ShardedSession::new(small_config(seed), 400, threads, SimDuration::from_secs(10));
        let horizon = SimTime::from_secs(120);
        s.start_churn(0.1, horizon);
        s.run_until(horizon);
        (s.merged_metrics(), s.stats().to_vec())
    }

    #[test]
    fn population_split_mirrors_region_weights() {
        let s = ShardedSession::new(small_config(1), 1000, 1, SimDuration::from_secs(1));
        let counts: Vec<usize> = s.stats().iter().map(|st| st.viewers).collect();
        assert_eq!(counts, vec![400, 300, 170, 80, 50]);
        assert_eq!(counts.iter().sum::<usize>(), 1000);
    }

    #[test]
    fn remainder_viewers_land_on_first_region() {
        let s = ShardedSession::new(small_config(1), 7, 1, SimDuration::from_secs(1));
        let counts: Vec<usize> = s.stats().iter().map(|st| st.viewers).collect();
        assert_eq!(counts.iter().sum::<usize>(), 7);
        // 7×40/100=2, 7×30/100=2, 7×17/100=1, 0, 0 → remainder 2 to NA.
        assert_eq!(counts, vec![4, 2, 1, 0, 0]);
    }

    #[test]
    fn thread_count_never_changes_the_outcome() {
        let (one, _) = run_small(42, 1);
        for threads in [2, 4, 8] {
            let (many, _) = run_small(42, threads);
            assert_eq!(
                one.churn_arrivals.value(),
                many.churn_arrivals.value(),
                "arrivals diverged at {threads} threads"
            );
            assert_eq!(one.population.points(), many.population.points());
            assert_eq!(one.cdn_usage_mbps.points(), many.cdn_usage_mbps.points());
            assert_eq!(
                one.requested_streams.value(),
                many.requested_streams.value()
            );
        }
    }

    #[test]
    fn shards_make_progress_and_report_events() {
        let (metrics, stats) = run_small(7, 2);
        assert!(metrics.churn_arrivals.value() > 0);
        for st in &stats {
            if st.viewers > 0 {
                assert!(st.events_processed > 0, "{:?} shard idle", st.region);
            }
        }
    }

    #[test]
    fn spill_serves_capacity_rejected_viewers_from_foreign_pools() {
        // Starve one region: a pool too small for even one view forces
        // NA joins to spill into the other regions' (idle) pools.
        let mut config = small_config(3);
        config.cdn = CdnConfig::default().with_outbound(telecast_net::Bandwidth::from_mbps(120));
        let mut s = ShardedSession::new(config, 300, 2, SimDuration::from_secs(5));
        let horizon = SimTime::from_secs(180);
        s.start_churn(0.05, horizon);
        s.run_until(horizon);
        let m = s.merged_metrics();
        assert!(
            m.spill_requests.value() > 0,
            "starved pools should emit spills"
        );
        assert!(
            m.spill_admits.value() + s.spill_denied() > 0,
            "spills must be answered"
        );
        assert!(m.spill_admits.value() <= m.spill_requests.value());
    }

    #[test]
    fn merged_metrics_sum_shard_counters() {
        let mut s = ShardedSession::new(small_config(9), 400, 2, SimDuration::from_secs(10));
        let horizon = SimTime::from_secs(60);
        s.start_churn(0.1, horizon);
        s.run_until(horizon);
        let merged = s.merged_metrics();
        let arrivals: u64 = s
            .shards()
            .iter()
            .map(|sh| sh.metrics().churn_arrivals.value())
            .sum();
        assert_eq!(merged.churn_arrivals.value(), arrivals);
        let peak: u64 = s
            .shards()
            .iter()
            .map(|sh| sh.metrics().peak_event_queue)
            .max()
            .unwrap_or(0);
        assert_eq!(merged.peak_event_queue, peak);
    }
}

//! Behavioural tests of the full session: admission, overlay shape,
//! synchronization bounds, view changes, departures and victim recovery.

use telecast::{
    GroupScope, OutboundPolicy, PlacementStrategy, SessionConfig, TelecastSession, ViewerStatus,
};
use telecast_cdn::CdnConfig;
use telecast_media::{ArrivalModel, ViewChoice, ViewId, ViewerWorkload};
use telecast_net::{Bandwidth, BandwidthProfile};
use telecast_overlay::TreeParent;
use telecast_sim::{SimDuration, SimRng};

fn small_config() -> SessionConfig {
    SessionConfig::default().with_seed(7)
}

fn join_all(session: &mut TelecastSession, view: ViewId) {
    for v in session.viewer_ids().to_vec() {
        session.request_join(v, view).expect("join accepted");
    }
    session.run_to_idle();
}

#[test]
fn all_viewers_accepted_with_generous_bandwidth() {
    let config = small_config().with_outbound(BandwidthProfile::fixed_mbps(10));
    let mut session = TelecastSession::builder(config).viewers(40).build();
    join_all(&mut session, ViewId::new(0));
    assert_eq!(session.metrics().admitted_viewers.value(), 40);
    assert_eq!(session.metrics().rejected_viewers.value(), 0);
    assert!((session.metrics().acceptance_ratio() - 1.0).abs() < 1e-9);
    // Every viewer got all 6 streams of the view.
    for &v in session.viewer_ids() {
        assert_eq!(session.viewer(v).unwrap().stream_count(), 6);
    }
}

#[test]
fn zero_outbound_makes_everything_cdn_served() {
    let config = small_config().with_outbound(BandwidthProfile::fixed_mbps(0));
    let mut session = TelecastSession::builder(config).viewers(30).build();
    join_all(&mut session, ViewId::new(0));
    // No P2P capacity at all: every accepted stream has a CDN parent.
    assert!((session.cdn_stream_fraction() - 1.0).abs() < 1e-9);
    // 30 viewers × 6 streams × 2 Mbps = 360 Mbps from the CDN.
    assert_eq!(session.cdn().outbound().used(), Bandwidth::from_mbps(360));
}

#[test]
fn capped_cdn_rejects_overflow_without_p2p() {
    // CDN fits only 36 streams (72 Mbps / 2), i.e. 6 viewers.
    let config = small_config()
        .with_outbound(BandwidthProfile::fixed_mbps(0))
        .with_cdn(CdnConfig::default().with_outbound(Bandwidth::from_mbps(72)));
    let mut session = TelecastSession::builder(config).viewers(10).build();
    join_all(&mut session, ViewId::new(0));
    assert_eq!(session.metrics().admitted_viewers.value(), 6);
    assert_eq!(session.metrics().rejected_viewers.value(), 4);
    let expected = 36.0 / 60.0;
    assert!((session.metrics().acceptance_ratio() - expected).abs() < 1e-9);
    // Rejected viewers hold no resources.
    let zero_stream_viewers = session
        .streams_per_viewer()
        .into_iter()
        .filter(|&n| n == 0)
        .count();
    assert_eq!(zero_stream_viewers, 4);
}

#[test]
fn p2p_contribution_reduces_cdn_load() {
    let base = small_config().with_cdn(CdnConfig::unbounded());
    let mut cdn_only =
        TelecastSession::builder(base.clone().with_outbound(BandwidthProfile::fixed_mbps(0)))
            .viewers(60)
            .build();
    join_all(&mut cdn_only, ViewId::new(0));

    let mut hybrid = TelecastSession::builder(base.with_outbound(BandwidthProfile::fixed_mbps(8)))
        .viewers(60)
        .build();
    join_all(&mut hybrid, ViewId::new(0));

    let cdn_only_mbps = cdn_only.cdn().outbound().used().as_mbps_f64();
    let hybrid_mbps = hybrid.cdn().outbound().used().as_mbps_f64();
    assert!(
        hybrid_mbps < cdn_only_mbps / 2.0,
        "8 Mbps of per-viewer upload should halve CDN load: {hybrid_mbps} vs {cdn_only_mbps}"
    );
    assert!((hybrid.metrics().acceptance_ratio() - 1.0).abs() < 1e-9);
}

#[test]
fn sync_bound_holds_for_every_connected_viewer() {
    let config = small_config().with_outbound(BandwidthProfile::uniform_mbps(0, 12));
    let mut session = TelecastSession::builder(config).viewers(80).build();
    // Spread over several views.
    let ids = session.viewer_ids().to_vec();
    for (i, v) in ids.iter().enumerate() {
        session
            .request_join(*v, ViewId::new((i % 8) as u32))
            .expect("valid request");
    }
    session.run_to_idle();
    let kappa = session.scheme().kappa();
    for &v in &ids {
        let state = session.viewer(v).unwrap();
        if state.status != ViewerStatus::Connected || state.subs.is_empty() {
            continue;
        }
        let min = state.layers().min().unwrap();
        let max = state.layers().max().unwrap();
        assert!(
            max - min <= kappa,
            "viewer {v} violates the κ bound: layers {min}..{max}"
        );
        // Layer Property 2 ⇒ inter-stream effective delay ≤ dbuff.
        let e2es: Vec<_> = state.subs.values().map(|s| s.e2e).collect();
        let lo = e2es.iter().min().unwrap();
        let hi = e2es.iter().max().unwrap();
        assert!(
            *hi - *lo <= session.config().dbuff,
            "viewer {v} skew {:?} exceeds dbuff",
            *hi - *lo
        );
    }
    assert!((session.effective_bandwidth_ratio() - 1.0).abs() < 1e-9);
}

#[test]
fn no_layering_ablation_loses_effective_bandwidth() {
    let mut config = small_config().with_outbound(BandwidthProfile::uniform_mbps(0, 12));
    config.layering_enabled = false;
    // Large per-hop processing makes deep trees drift far apart.
    config.hop_processing = SimDuration::from_millis(200);
    let mut session = TelecastSession::builder(config).viewers(120).build();
    join_all(&mut session, ViewId::new(0));
    let ratio = session.effective_bandwidth_ratio();
    assert!(
        ratio < 1.0,
        "without layering some delivered bandwidth must be ineffective, got {ratio}"
    );
}

#[test]
fn join_delays_are_sub_second_scale() {
    let config = small_config();
    let mut session = TelecastSession::builder(config).viewers(50).build();
    join_all(&mut session, ViewId::new(0));
    let h = &session.metrics().join_delays_ms;
    assert_eq!(h.len(), 50);
    let summary = h.summary();
    assert!(summary.min > 50.0, "join needs several network legs");
    assert!(
        summary.max < 3_000.0,
        "join delay {0} ms out of the paper's range",
        summary.max
    );
}

#[test]
fn view_change_is_faster_than_join_and_served_by_cdn() {
    let config = small_config().with_outbound(BandwidthProfile::fixed_mbps(8));
    let mut session = TelecastSession::builder(config).viewers(30).build();
    join_all(&mut session, ViewId::new(0));
    let ids = session.viewer_ids().to_vec();
    for &v in ids.iter().take(10) {
        session
            .request_view_change(v, ViewId::new(1))
            .expect("connected");
    }
    session.run_to_idle();
    let vc = session.metrics().view_change_delays_ms.summary();
    assert_eq!(vc.count, 10);
    let join = session.metrics().join_delays_ms.summary();
    assert!(
        vc.mean < join.mean,
        "view change ({} ms) should beat join ({} ms)",
        vc.mean,
        join.mean
    );
    // After settling, the switchers watch view 1.
    for &v in ids.iter().take(10) {
        let state = session.viewer(v).unwrap();
        assert_eq!(state.view, Some(ViewId::new(1)));
        assert_eq!(state.status, ViewerStatus::Connected);
        assert!(state.temp_leases.is_empty(), "temp CDN serves released");
        assert!(state.stream_count() > 0);
    }
}

#[test]
fn departures_recover_orphans() {
    let config = small_config().with_outbound(BandwidthProfile::fixed_mbps(6));
    let mut session = TelecastSession::builder(config).viewers(40).build();
    join_all(&mut session, ViewId::new(0));
    let ids = session.viewer_ids().to_vec();
    // Remove the first half (joined first → nearer the roots → victims).
    for &v in ids.iter().take(20) {
        session.request_depart(v).expect("connected");
    }
    session.run_to_idle();
    let mut still_serving = 0;
    for &v in ids.iter().skip(20) {
        let state = session.viewer(v).unwrap();
        assert_eq!(state.status, ViewerStatus::Connected);
        // Every remaining subscription has a live upstream (a connected
        // parent or the CDN).
        for (sid, sub) in &state.subs {
            match sub.parent {
                TreeParent::Cdn => {}
                TreeParent::Viewer(p) => {
                    let pstate = session.viewer(p).unwrap();
                    assert_eq!(
                        pstate.status,
                        ViewerStatus::Connected,
                        "stream {sid} of {v} is fed by departed {p}"
                    );
                }
            }
        }
        still_serving += state.stream_count();
    }
    assert!(still_serving > 0);
    assert!(
        session.metrics().victims.value() > 0,
        "departures orphaned someone"
    );
}

#[test]
fn abrupt_failure_behaves_like_departure() {
    let config = small_config().with_outbound(BandwidthProfile::fixed_mbps(6));
    let mut session = TelecastSession::builder(config).viewers(20).build();
    join_all(&mut session, ViewId::new(0));
    let ids = session.viewer_ids().to_vec();
    session.fail_viewer(ids[0]).expect("connected");
    session.run_to_idle();
    assert_eq!(session.viewer(ids[0]).unwrap().status, ViewerStatus::Idle);
    for &v in &ids[1..] {
        for sub in session.viewer(v).unwrap().subs.values() {
            if let TreeParent::Viewer(p) = sub.parent {
                assert_ne!(p, ids[0], "failed viewer still feeds {v}");
            }
        }
    }
}

#[test]
fn random_baseline_accepts_fewer_than_push_down() {
    let cdn = CdnConfig::default().with_outbound(Bandwidth::from_mbps(150));
    let build = |placement| {
        let mut config = small_config()
            .with_outbound(BandwidthProfile::uniform_mbps(2, 14))
            .with_cdn(cdn);
        config.placement = placement;
        if matches!(placement, PlacementStrategy::Random { .. }) {
            config.layering_enabled = false;
        }
        let mut session = TelecastSession::builder(config).viewers(200).build();
        let mut rng = SimRng::seed_from_u64(3);
        let wl = ViewerWorkload::builder(200, 8)
            .arrivals(ArrivalModel::Staggered {
                gap: SimDuration::from_millis(40),
            })
            .view_choice(ViewChoice::Zipf { s: 0.8 })
            .build(&mut rng);
        session.run_workload(&wl);
        session.metrics().acceptance_ratio()
    };
    let telecast = build(PlacementStrategy::PushDown);
    let random = build(PlacementStrategy::Random { probes: 1 });
    assert!(
        telecast > random,
        "push-down ({telecast}) should beat random ({random})"
    );
}

#[test]
fn outbound_policies_trade_quality_for_share() {
    // PriorityFirst concentrates slots on S1-trees; EqualSplit spreads.
    let run = |policy| {
        let mut config = small_config().with_outbound(BandwidthProfile::fixed_mbps(6));
        config.outbound_policy = policy;
        config.cdn = CdnConfig::default().with_outbound(Bandwidth::from_mbps(100));
        let mut session = TelecastSession::builder(config).viewers(60).build();
        join_all(&mut session, ViewId::new(0));
        session.metrics().acceptance_ratio()
    };
    let rr = run(OutboundPolicy::RoundRobin);
    let pf = run(OutboundPolicy::PriorityFirst);
    // Round-robin must not be worse than priority-first overall.
    assert!(
        rr >= pf,
        "round-robin ({rr}) should be at least as good as priority-first ({pf})"
    );
}

#[test]
fn global_scope_shares_more_than_per_lsc() {
    let cdn = CdnConfig::unbounded();
    let run = |scope| {
        let mut config = small_config()
            .with_outbound(BandwidthProfile::fixed_mbps(6))
            .with_cdn(cdn);
        config.group_scope = scope;
        let mut session = TelecastSession::builder(config).viewers(100).build();
        join_all(&mut session, ViewId::new(0));
        session.cdn().outbound().used().as_mbps_f64()
    };
    let per_lsc = run(GroupScope::PerLsc);
    let global = run(GroupScope::Global);
    assert!(
        global <= per_lsc,
        "global grouping ({global}) should not need more CDN than per-LSC ({per_lsc})"
    );
}

#[test]
fn workload_runs_are_deterministic() {
    let run = || {
        let config = small_config().with_outbound(BandwidthProfile::uniform_mbps(0, 12));
        let mut session = TelecastSession::builder(config).viewers(100).build();
        let mut rng = SimRng::seed_from_u64(11);
        let wl = ViewerWorkload::builder(100, 8)
            .arrivals(ArrivalModel::Poisson {
                mean_gap: SimDuration::from_millis(25),
            })
            .view_choice(ViewChoice::Zipf { s: 1.0 })
            .view_changes(0.5, SimDuration::from_secs(20))
            .departures(0.2, SimDuration::from_secs(40))
            .build(&mut rng);
        session.run_workload(&wl);
        (
            session.metrics().acceptance_ratio(),
            session.metrics().admitted_viewers.value(),
            session.cdn().outbound().used().as_kbps(),
            session.metrics().victims.value(),
            session.metrics().subscription_messages.value(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn random_mode_ports_are_conserved_under_churn() {
    // In the Random baseline, parents' outbound is reserved per edge (no
    // pre-allocation); arbitrary churn must never leave reservations
    // behind once everyone departs.
    let mut config = small_config().with_outbound(BandwidthProfile::uniform_mbps(2, 14));
    config.placement = PlacementStrategy::Random { probes: 2 };
    config.layering_enabled = false;
    let mut session = TelecastSession::builder(config).viewers(80).build();
    let mut rng = SimRng::seed_from_u64(4);
    let wl = ViewerWorkload::builder(80, 8)
        .arrivals(ArrivalModel::Staggered {
            gap: SimDuration::from_millis(20),
        })
        .view_changes(1.0, SimDuration::from_secs(30))
        .build(&mut rng);
    session.run_workload(&wl);
    for &v in session.viewer_ids().to_vec().iter() {
        let _ = session.request_depart(v);
    }
    session.run_to_idle();
    assert_eq!(session.cdn().outbound().used(), Bandwidth::ZERO);
    for &v in session.viewer_ids() {
        let state = session.viewer(v).unwrap();
        assert_eq!(
            state.ports.outbound.used(),
            Bandwidth::ZERO,
            "viewer {v} still holds outbound reservations after full departure"
        );
        assert_eq!(state.ports.inbound.used(), Bandwidth::ZERO);
    }
}

#[test]
fn adaptation_period_is_deterministic_too() {
    let run = || {
        let mut config = small_config().with_outbound(BandwidthProfile::uniform_mbps(0, 12));
        config.adaptation_period = Some(SimDuration::from_secs(45));
        let mut session = TelecastSession::builder(config).viewers(60).build();
        let mut rng = SimRng::seed_from_u64(12);
        let wl = ViewerWorkload::builder(60, 8)
            .arrivals(ArrivalModel::Poisson {
                mean_gap: SimDuration::from_millis(400),
            })
            .view_changes(0.5, SimDuration::from_secs(90))
            .build(&mut rng);
        session.run_workload(&wl);
        (
            session.metrics().subscription_messages.value(),
            session.layer_snapshot().iter().sum::<u64>(),
            session.cdn().outbound().used().as_kbps(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn api_errors_are_reported() {
    let mut session = TelecastSession::builder(small_config()).viewers(2).build();
    let ids = session.viewer_ids().to_vec();
    // Unknown view.
    assert!(session.request_join(ids[0], ViewId::new(99)).is_err());
    // Double join.
    session.request_join(ids[0], ViewId::new(0)).unwrap();
    assert!(session.request_join(ids[0], ViewId::new(0)).is_err());
    // View change before being connected.
    assert!(session.request_view_change(ids[1], ViewId::new(1)).is_err());
    // Depart before join.
    assert!(session.request_depart(ids[1]).is_err());
}

/// Churn pool conservation: at every sampled instant of a churn run the
/// available pool holds no duplicates, every idle viewer is in the pool
/// (the push-back paths in `churn_admit_one`/`churn_leave` never drop
/// one), and `available + connected + in-flight` partitions the whole
/// population. After the horizon drains, every viewer is back in the
/// pool exactly once.
#[test]
fn churn_pool_is_conserved_under_pushback() {
    use std::collections::BTreeSet;
    use telecast_net::NodeId;

    let config = small_config()
        .with_outbound(BandwidthProfile::uniform_mbps(0, 12))
        .with_monitor_period(SimDuration::from_secs(5));
    let mut session = TelecastSession::builder(config).viewers(120).build();
    // Aggressive churn so arrivals, graceful departures, abrupt failures
    // and stale-candidate push-backs all interleave within the horizon.
    let spec = telecast_media::ChurnSpec::steady_state(120, 0.5).with_fail_fraction(0.3);
    let horizon = telecast_sim::SimTime::from_secs(300);
    session.start_churn(spec, horizon, 60);
    let all: BTreeSet<NodeId> = session.viewer_ids().iter().copied().collect();

    for step in 1..=30u64 {
        session.run_until(telecast_sim::SimTime::from_secs(step * 10));
        let pool = session.churn_pool().expect("churn active").to_vec();
        let pool_set: BTreeSet<NodeId> = pool.iter().copied().collect();
        assert_eq!(pool.len(), pool_set.len(), "duplicate viewers in the pool");
        assert!(pool_set.is_subset(&all), "pool holds unknown viewers");

        let mut connected = 0usize;
        let mut departure_in_flight = 0usize;
        let mut join_in_flight = 0usize;
        let mut parked_rejected = 0usize;
        for &v in &all {
            let status = session.viewer(v).expect("known viewer").status;
            match status {
                ViewerStatus::Connected => {
                    if pool_set.contains(&v) {
                        // Pushed back at dwell expiry while the graceful
                        // departure is still in flight.
                        departure_in_flight += 1;
                    } else {
                        connected += 1;
                    }
                }
                ViewerStatus::Joining => {
                    assert!(!pool_set.contains(&v), "joining viewer still pooled");
                    join_in_flight += 1;
                }
                ViewerStatus::Idle => {
                    assert!(
                        pool_set.contains(&v),
                        "idle viewer {v} leaked out of the churn pool"
                    );
                }
                ViewerStatus::Rejected => {
                    // Back in the pool once its dwell expired; parked
                    // (awaiting that expiry) otherwise.
                    if !pool_set.contains(&v) {
                        parked_rejected += 1;
                    }
                }
            }
        }
        assert_eq!(
            (pool.len() - departure_in_flight)
                + (connected + departure_in_flight)
                + join_in_flight
                + parked_rejected,
            all.len(),
            "population partition broken at step {step}"
        );
        assert_eq!(
            session.connected_viewers(),
            connected + departure_in_flight,
            "maintained connected counter diverged"
        );
    }

    // Horizon passed: the audience drains and everyone returns home.
    session.run_to_idle();
    let pool = session.churn_pool().expect("churn active").to_vec();
    let pool_set: BTreeSet<NodeId> = pool.iter().copied().collect();
    assert_eq!(pool.len(), pool_set.len(), "duplicates after drain");
    assert_eq!(pool_set, all, "viewers missing from the drained pool");
    assert_eq!(session.connected_viewers(), 0);
}

/// The elastic-CDN loop end-to-end at session level: a pool too small
/// for the kickoff parks rejected joins, the autoscaler grows the pool,
/// and the retry queue drains into admissions.
#[test]
fn autoscale_retries_parked_joins_after_scale_up() {
    use telecast_cdn::AutoscalePolicy;

    // No P2P upload at all: every stream must come from the CDN, so the
    // 72 Mbps pool admits only 6 of 30 viewers at the kickoff.
    let policy = AutoscalePolicy {
        period: SimDuration::from_secs(5),
        min: Bandwidth::from_mbps(72),
        max: Bandwidth::from_mbps(720),
        step: Bandwidth::from_mbps(144),
        up_cooldown: SimDuration::from_secs(5),
        down_cooldown: SimDuration::from_secs(600),
        ..AutoscalePolicy::default()
    };
    // No monitor period here: two periodic sources would re-arm each
    // other forever and `run_to_idle` could not drain (the same reason
    // the scenario runners drive continuous runs with `run_until`).
    let config = small_config()
        .with_outbound(BandwidthProfile::fixed_mbps(0))
        .with_cdn(CdnConfig::default().with_outbound(Bandwidth::from_mbps(72)))
        .with_autoscale(policy);
    let mut session = TelecastSession::builder(config).viewers(30).build();
    for v in session.viewer_ids().to_vec() {
        session.request_join(v, ViewId::new(0)).expect("requested");
    }
    session.run_to_idle();

    let m = session.metrics();
    assert!(
        m.autoscale_ups.value() > 0,
        "saturated pool never triggered a scale-up"
    );
    assert!(
        m.join_retries.value() > 0,
        "parked joins were never retried"
    );
    // 30 viewers × 6 streams × 2 Mbps = 360 Mbps total demand: within
    // the 720 Mbps ceiling, so every parked join eventually lands.
    assert_eq!(session.metrics().admitted_viewers.value(), 30);
    assert_eq!(session.retry_queue_len(), 0, "retry queue did not drain");
    assert!(
        session.cdn().outbound().total() > Bandwidth::from_mbps(72),
        "pool never grew"
    );
    // The staircase was recorded.
    assert!(m.provisioned_cdn_mbps.points().len() >= 2);
}

/// Per-region pools under a CDN-only kickoff: admission and victim
/// recovery are region-scoped (one saturated region rejects while
/// others still serve), a controller per regional pool scales each one
/// independently, retries drain per region, and the slot accounting
/// always conserves the aggregate pool.
#[test]
fn per_region_pools_scale_and_conserve_regionally() {
    use telecast_cdn::{AutoscalePolicy, PoolScope};
    use telecast_net::Region;

    // The step is sized so every region's split quantum covers a
    // viewer's full 12 Mbps view in one or two actions (Oceania's 5%
    // share of 400 Mbps is 20 Mbps) — a region whose step is smaller
    // than one view needs more scale actions than a parked join's
    // retry budget.
    let policy = AutoscalePolicy {
        period: SimDuration::from_secs(5),
        min: Bandwidth::from_mbps(100),
        max: Bandwidth::from_mbps(1_000),
        step: Bandwidth::from_mbps(400),
        up_cooldown: SimDuration::from_secs(5),
        down_cooldown: SimDuration::from_secs(600),
        ..AutoscalePolicy::default()
    };
    // Zero P2P upload: every stream is CDN-served, so the tiny
    // weight-split shares (Oceania starts at 5 Mbps — not even three
    // 2 Mbps streams) saturate regionally at the kickoff.
    let config = small_config()
        .with_outbound(BandwidthProfile::fixed_mbps(0))
        .with_cdn(
            CdnConfig::default()
                .with_outbound(Bandwidth::from_mbps(100))
                .with_pool_scope(PoolScope::PerRegion),
        )
        .with_autoscale(policy);
    let mut session = TelecastSession::builder(config).viewers(40).build();
    assert_eq!(session.autoscalers().len(), Region::ALL.len());
    for v in session.viewer_ids().to_vec() {
        session.request_join(v, ViewId::new(0)).expect("requested");
    }
    session.run_to_idle();

    let m = session.metrics();
    assert!(
        m.autoscale_ups.value() > 0,
        "no regional pool ever scaled up"
    );
    // 40 viewers × 12 Mbps within the 1000 Mbps aggregate ceiling:
    // every region's parked joins eventually land.
    assert_eq!(m.admitted_viewers.value(), 40);
    assert_eq!(session.retry_queue_len(), 0, "a regional queue is stuck");
    // Slot accounting conserves the aggregate in both directions.
    let cdn = session.cdn();
    let used_sum: u64 = (0..cdn.pool_slots())
        .map(|s| cdn.pool(s).used().as_kbps())
        .sum();
    let total_sum: u64 = (0..cdn.pool_slots())
        .map(|s| cdn.pool(s).total().as_kbps())
        .sum();
    assert_eq!(used_sum, cdn.outbound().used().as_kbps());
    assert_eq!(total_sum, cdn.outbound().total().as_kbps());
    for slot in 0..cdn.pool_slots() {
        assert!(cdn.pool(slot).used() <= cdn.pool(slot).total());
    }
    // Regions scaled *independently*: at least two distinct slot totals
    // (the 40%-weight region needs more steps than the 5% one).
    let mut totals: Vec<u64> = (0..cdn.pool_slots())
        .map(|s| cdn.pool(s).total().as_kbps())
        .collect();
    totals.dedup();
    assert!(
        totals.len() > 1,
        "regional pools all moved in lockstep: {totals:?}"
    );
}

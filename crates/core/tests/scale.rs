//! Scale regressions: large sessions must build on the O(n) delay
//! substrate (never materialising an n² matrix) and stay seed-exact.

use telecast::{DelayModelChoice, SessionConfig, TelecastSession};
use telecast_media::{ArrivalModel, ViewChoice, ViewerWorkload};
use telecast_net::BandwidthProfile;
use telecast_sim::SimRng;

/// 10,000 viewers: the dense backend would allocate ≈ 3.2 GB of delay
/// tables before the first event fires. Auto selection must pick the
/// O(n) coordinate model and build the session outright.
#[test]
fn ten_thousand_viewer_session_builds_on_coordinates() {
    let session = TelecastSession::builder(SessionConfig::default().with_seed(11))
        .viewers(10_000)
        .build();
    assert!(
        session.delay_backend().is_coordinate(),
        "auto backend selection kept the dense matrix at 10k viewers"
    );
    assert_eq!(session.viewer_ids().len(), 10_000);
    // Every node (viewers + producers/controllers/edges) is covered.
    assert_eq!(session.delay_backend().len(), session.registry().len());
}

/// Small sessions keep the dense matrix under auto selection, and the
/// config can force either backend.
#[test]
fn backend_selection_respects_config() {
    let small = TelecastSession::builder(SessionConfig::default())
        .viewers(50)
        .build();
    assert_eq!(small.delay_backend().kind(), "dense");

    let forced = TelecastSession::builder(
        SessionConfig::default().with_delay_model(DelayModelChoice::Coordinate),
    )
    .viewers(50)
    .build();
    assert_eq!(forced.delay_backend().kind(), "coordinate");

    let dense = TelecastSession::builder(
        SessionConfig::default().with_delay_model(DelayModelChoice::Dense),
    )
    .viewers(50)
    .build();
    assert_eq!(dense.delay_backend().kind(), "dense");
}

/// Identical seeds on the coordinate backend reproduce identical
/// metrics — the same determinism contract the dense backend honours.
#[test]
fn coordinate_backend_is_seed_deterministic() {
    let run = || {
        let config = SessionConfig::default()
            .with_outbound(BandwidthProfile::uniform_mbps(0, 12))
            .with_delay_model(DelayModelChoice::Coordinate)
            .with_seed(23);
        let mut session = TelecastSession::builder(config).viewers(120).build();
        let mut rng = SimRng::seed_from_u64(9);
        let wl = ViewerWorkload::builder(120, session.catalog().len())
            .arrivals(ArrivalModel::Flash)
            .view_choice(ViewChoice::Zipf { s: 0.8 })
            .build(&mut rng);
        session.run_workload(&wl);
        (
            session.metrics().admitted_viewers.value(),
            session.metrics().subscription_messages.value(),
            session.metrics().displacements.value(),
            session.cdn().outbound().used().as_kbps(),
            session.layer_snapshot().iter().sum::<u64>(),
        )
    };
    let a = run();
    assert_eq!(a, run());
    assert!(a.0 > 0, "flash crowd admitted nobody");
}

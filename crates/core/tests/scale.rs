//! Scale regressions: large sessions must build on the O(n) delay
//! substrate (never materialising an n² matrix) and stay seed-exact.

use telecast::{DelayModelChoice, SessionConfig, TelecastSession};
use telecast_cdn::CdnConfig;
use telecast_media::{ArrivalModel, ChurnSpec, ViewChoice, ViewerWorkload};
use telecast_net::{Bandwidth, BandwidthProfile};
use telecast_sim::{SimDuration, SimRng, SimTime};

/// 10,000 viewers: the dense backend would allocate ≈ 3.2 GB of delay
/// tables before the first event fires. Auto selection must pick the
/// O(n) coordinate model and build the session outright.
#[test]
fn ten_thousand_viewer_session_builds_on_coordinates() {
    let session = TelecastSession::builder(SessionConfig::default().with_seed(11))
        .viewers(10_000)
        .build();
    assert!(
        session.delay_backend().is_coordinate(),
        "auto backend selection kept the dense matrix at 10k viewers"
    );
    assert_eq!(session.viewer_ids().len(), 10_000);
    // Every node (viewers + producers/controllers/edges) is covered.
    assert_eq!(session.delay_backend().len(), session.registry().len());
}

/// Small sessions keep the dense matrix under auto selection, and the
/// config can force either backend.
#[test]
fn backend_selection_respects_config() {
    let small = TelecastSession::builder(SessionConfig::default())
        .viewers(50)
        .build();
    assert_eq!(small.delay_backend().kind(), "dense");

    let forced = TelecastSession::builder(
        SessionConfig::default().with_delay_model(DelayModelChoice::Coordinate),
    )
    .viewers(50)
    .build();
    assert_eq!(forced.delay_backend().kind(), "coordinate");

    let dense = TelecastSession::builder(
        SessionConfig::default().with_delay_model(DelayModelChoice::Dense),
    )
    .viewers(50)
    .build();
    assert_eq!(dense.delay_backend().kind(), "dense");
}

/// A 2k-viewer flash prefill plus sustained churn must not reintroduce
/// an O(n) per-join tree walk: the attach planner's cumulative level
/// probes stay within a small constant per placed stream (a BFS over
/// occupied slots would average ~members/2 probes per insert, i.e.
/// hundreds here).
#[test]
fn churn_attach_probes_stay_logarithmic() {
    let viewers = 2_000;
    let config = SessionConfig::default()
        .with_outbound(BandwidthProfile::uniform_mbps(2, 14))
        .with_cdn(CdnConfig::default().with_outbound(Bandwidth::from_mbps(viewers as u64 * 5)))
        .with_delay_model(DelayModelChoice::Coordinate)
        .with_monitor_period(SimDuration::from_secs(10))
        .with_seed(31);
    let mut session = TelecastSession::builder(config).viewers(viewers).build();
    let horizon = SimTime::from_secs(120);
    session.start_churn(ChurnSpec::steady_state(viewers, 0.05), horizon, viewers);
    session.run_until(horizon);

    let m = session.metrics();
    let placements = m.accepted_streams.value();
    assert!(placements > 1_000, "churn run barely placed anything");
    let probes = session.attach_probe_total();
    let per_placement = probes as f64 / placements as f64;
    assert!(
        per_placement < 64.0,
        "attach planner probed {per_placement:.1} levels per placement — \
         an O(n) traversal is back"
    );
    // Applying displacements/repositions shifts subtree depths; on this
    // realistic mix the moved subtrees must stay small (the worst case —
    // every join displacing the root of a growing chain — would average
    // ~members/2 ≈ 1000 shifts per placement here).
    let shifts_per_placement = session.depth_shift_total() as f64 / placements as f64;
    assert!(
        shifts_per_placement < 32.0,
        "subtree moves shifted {shifts_per_placement:.1} depths per placement — \
         displacement is degenerating into chain storms"
    );
    assert!(
        session.connected_viewers() > viewers / 2,
        "audience collapsed"
    );
}

/// Two churn runs with equal seeds replay the identical membership
/// timeline: same counters, same population samples, same final state.
#[test]
fn churn_runtime_is_seed_deterministic() {
    let run = |seed: u64| {
        let config = SessionConfig::default()
            .with_outbound(BandwidthProfile::uniform_mbps(0, 12))
            .with_monitor_period(SimDuration::from_secs(5))
            .with_seed(seed);
        let mut session = TelecastSession::builder(config).viewers(250).build();
        let horizon = SimTime::from_secs(180);
        session.start_churn(
            ChurnSpec::steady_state(250, 0.1).with_fail_fraction(0.3),
            horizon,
            250,
        );
        session.run_until(horizon);
        let m = session.metrics();
        (
            m.churn_arrivals.value(),
            m.churn_departures.value(),
            m.churn_failures.value(),
            m.victims.value(),
            m.subscription_messages.value(),
            session.connected_viewers(),
            m.population.points().to_vec(),
            session.cdn().outbound().used().as_kbps(),
        )
    };
    let a = run(17);
    assert_eq!(a, run(17));
    assert!(a.0 > 0, "no churn arrivals");
    assert!(a.1 + a.2 > 0, "no churn leaves in 3 minutes at 10%/min");
    assert_ne!(a, run(18));
}

/// Identical seeds on the coordinate backend reproduce identical
/// metrics — the same determinism contract the dense backend honours.
#[test]
fn coordinate_backend_is_seed_deterministic() {
    let run = || {
        let config = SessionConfig::default()
            .with_outbound(BandwidthProfile::uniform_mbps(0, 12))
            .with_delay_model(DelayModelChoice::Coordinate)
            .with_seed(23);
        let mut session = TelecastSession::builder(config).viewers(120).build();
        let mut rng = SimRng::seed_from_u64(9);
        let wl = ViewerWorkload::builder(120, session.catalog().len())
            .arrivals(ArrivalModel::Flash)
            .view_choice(ViewChoice::Zipf { s: 0.8 })
            .build(&mut rng);
        session.run_workload(&wl);
        (
            session.metrics().admitted_viewers.value(),
            session.metrics().subscription_messages.value(),
            session.metrics().displacements.value(),
            session.cdn().outbound().used().as_kbps(),
            session.layer_snapshot().iter().sum::<u64>(),
        )
    };
    let a = run();
    assert_eq!(a, run());
    assert!(a.0 > 0, "flash crowd admitted nobody");
}

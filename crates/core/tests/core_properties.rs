//! Property-based tests of the core algorithms: allocation invariants,
//! layer-scheme algebra, and whole-session invariants under randomized
//! small workloads.

use proptest::prelude::*;
use telecast::alloc::{allocate_inbound, allocate_outbound, covers_all_sites};
use telecast::{LayerScheme, OutboundPolicy, SessionConfig, TelecastSession, ViewerStatus};
use telecast_media::{PrioritizedStream, SiteId, StreamId, ViewId};
use telecast_net::{Bandwidth, BandwidthProfile};
use telecast_overlay::TreeParent;
use telecast_sim::SimDuration;

fn arb_streams() -> impl Strategy<Value = Vec<PrioritizedStream>> {
    proptest::collection::vec((0u16..3, 500u64..4_000), 1..10).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (site, kbps))| PrioritizedStream {
                stream: StreamId::new(SiteId::new(site), i as u16),
                df: 1.0 - 0.05 * i as f64,
                eta: i as u32 + 1,
                bitrate_kbps: kbps,
            })
            .collect()
    })
}

proptest! {
    /// Inbound allocation accepts a prefix, never overshoots capacity,
    /// and is monotone in capacity.
    #[test]
    fn inbound_is_prefix_and_capacity_bounded(
        streams in arb_streams(),
        capacity in 0u64..30_000,
    ) {
        let cap = Bandwidth::from_kbps(capacity);
        let plan = allocate_inbound(&streams, cap, |_, _| true);
        prop_assert!(plan.inbound_used <= cap);
        prop_assert!(plan.accepted.len() <= streams.len());
        for (a, b) in plan.accepted.iter().zip(streams.iter()) {
            prop_assert_eq!(a.stream, b.stream, "accepted set must be a prefix");
        }
        // Monotone: more capacity never accepts fewer streams.
        let bigger = allocate_inbound(
            &streams,
            Bandwidth::from_kbps(capacity + 2_000),
            |_, _| true,
        );
        prop_assert!(bigger.accepted.len() >= plan.accepted.len());
    }

    /// Round-robin outbound never overshoots capacity, leaves less than
    /// the smallest stream rate unused, and every policy stays within
    /// capacity — for any mix of stream rates.
    #[test]
    fn outbound_policies_respect_capacity(
        streams in arb_streams(),
        capacity in 0u64..60_000,
    ) {
        let cap = Bandwidth::from_kbps(capacity);
        let rr = allocate_outbound(&streams, cap, OutboundPolicy::RoundRobin);
        prop_assert!(rr.outbound_used <= cap);
        // Round-robin is exhaustive: what remains fits no stream.
        let leftover = cap - rr.outbound_used;
        let min_bw = streams.iter().map(|s| s.bitrate_kbps).min().unwrap_or(0);
        prop_assert!(leftover.as_kbps() < min_bw.max(1));
        for policy in [OutboundPolicy::PriorityFirst, OutboundPolicy::EqualSplit] {
            let plan = allocate_outbound(&streams, cap, policy);
            prop_assert!(plan.outbound_used <= cap);
        }
    }

    /// With uniform stream rates (every 3DTI camera encodes at the same
    /// bitrate), round-robin guarantees the Overlay Property's premise:
    /// allocated outbound is non-increasing along the priority order and
    /// slot counts differ by at most one.
    #[test]
    fn round_robin_monotone_for_uniform_rates(
        count in 1usize..10,
        bitrate in 500u64..4_000,
        capacity in 0u64..60_000,
    ) {
        let streams: Vec<PrioritizedStream> = (0..count)
            .map(|i| PrioritizedStream {
                stream: StreamId::new(SiteId::new((i % 2) as u16), i as u16),
                df: 1.0 - 0.05 * i as f64,
                eta: i as u32 + 1,
                bitrate_kbps: bitrate,
            })
            .collect();
        let cap = Bandwidth::from_kbps(capacity);
        let rr = allocate_outbound(&streams, cap, OutboundPolicy::RoundRobin);
        let degs: Vec<u32> = rr.slots.iter().map(|&(_, d)| d).collect();
        for w in degs.windows(2) {
            prop_assert!(w[0] >= w[1], "slot monotonicity violated: {degs:?}");
        }
        let (lo, hi) = (degs.iter().min().unwrap(), degs.iter().max().unwrap());
        prop_assert!(hi - lo <= 1, "round-robin spread exceeds one: {degs:?}");
        // Under uniform rates, round-robin also uses at least as much
        // capacity as equal-split (which wastes per-stream remainders).
        let es = allocate_outbound(&streams, cap, OutboundPolicy::EqualSplit);
        prop_assert!(rr.outbound_used >= es.outbound_used);
    }

    /// Site coverage is exactly "every site index appears".
    #[test]
    fn site_coverage_definition(streams in arb_streams(), sites in 1usize..4) {
        let covered = covers_all_sites(&streams, sites);
        let mut seen = vec![false; sites];
        for s in &streams {
            if s.stream.site().index() < sites {
                seen[s.stream.site().index()] = true;
            }
        }
        prop_assert_eq!(covered, seen.iter().all(|&b| b));
    }

    /// Layer scheme algebra: layer_of_delay inverts delay_at_top_of, and
    /// push-down yields spreads ≤ κ while never lowering any layer.
    #[test]
    fn layer_scheme_algebra(
        dbuff_ms in 100u64..1_000,
        kappa in 2u64..8,
        layers in proptest::collection::vec(0u64..40, 1..12),
    ) {
        let scheme = LayerScheme::new(
            SimDuration::from_secs(60),
            SimDuration::from_millis(dbuff_ms),
            kappa,
            SimDuration::from_secs(90),
        );
        for l in 0..scheme.max_layer() {
            prop_assert_eq!(scheme.layer_of_delay(scheme.delay_at_top_of(l)), l);
        }
        let mut pushed = layers.clone();
        scheme.push_down(&mut pushed);
        let hi = *pushed.iter().max().unwrap();
        let lo = *pushed.iter().min().unwrap();
        prop_assert!(hi - lo <= kappa);
        prop_assert_eq!(hi, *layers.iter().max().unwrap(), "deepest layer unchanged");
        for (before, after) in layers.iter().zip(pushed.iter()) {
            prop_assert!(after >= before, "push-down never raises a stream earlier");
        }
    }

    /// Whole-session invariant under random joins: whatever the seed,
    /// outbound profile and view spread, every connected viewer satisfies
    /// site coverage, the κ bound, and has live upstreams.
    #[test]
    fn session_invariants_hold_for_random_populations(
        seed in 0u64..1_000,
        lo in 0u64..6,
        spread in 0u64..9,
        viewers in 5usize..40,
    ) {
        let config = SessionConfig::default()
            .with_seed(seed)
            .with_outbound(BandwidthProfile::Uniform {
                lo: Bandwidth::from_mbps(lo),
                hi: Bandwidth::from_mbps(lo + spread),
            });
        let mut session = TelecastSession::builder(config).viewers(viewers).build();
        let ids = session.viewer_ids().to_vec();
        for (i, &v) in ids.iter().enumerate() {
            session.request_join(v, ViewId::new((i % 8) as u32)).expect("valid");
        }
        session.run_to_idle();
        let kappa = session.scheme().kappa();
        let sites = session.config().sites.len();
        for &v in &ids {
            let state = session.viewer(v).unwrap();
            if state.status != ViewerStatus::Connected {
                continue;
            }
            // Site coverage (admission constraint).
            let mut seen = vec![false; sites];
            for sid in state.subs.keys() {
                seen[sid.site().index()] = true;
            }
            prop_assert!(seen.iter().all(|&b| b), "viewer {v} missing a site");
            // κ bound.
            if let (Some(lo), Some(hi)) = (state.layers().min(), state.layers().max()) {
                prop_assert!(hi - lo <= kappa);
            }
            // Upstreams live; CDN parents hold leases.
            for sub in state.subs.values() {
                match sub.parent {
                    TreeParent::Cdn => prop_assert!(sub.lease.is_some()),
                    TreeParent::Viewer(p) => {
                        prop_assert_eq!(
                            session.viewer(p).unwrap().status,
                            ViewerStatus::Connected
                        );
                    }
                }
            }
        }
    }
}

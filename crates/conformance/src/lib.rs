//! Host crate for the cross-crate integration tests in `/tests`.
//!
//! The suites cover: full join/stream/render pipelines (`end_to_end`),
//! the view-synchronisation guarantees (`synchronization`), view-change
//! and failure adaptation (`adaptation`), bit-for-bit reproducibility
//! (`determinism`), and the TeleCast-vs-Random comparison invariants
//! (`baseline_comparison`).

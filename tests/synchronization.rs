//! View-synchronization guarantees across the whole stack: the κ layer
//! bound, the exact dbuff skew bound, Layer Property 1 sharing ranges,
//! and Eq. 2 subscription-point feasibility.

use telecast::{LayerScheme, SessionConfig, TelecastSession, ViewerStatus};
use telecast_media::{FrameNumber, ViewId};
use telecast_net::BandwidthProfile;
use telecast_sim::{SimDuration, SimRng};

fn joined_session(seed: u64, viewers: usize, outbound: BandwidthProfile) -> TelecastSession {
    let config = SessionConfig::default()
        .with_seed(seed)
        .with_outbound(outbound);
    let mut session = TelecastSession::builder(config).viewers(viewers).build();
    let ids = session.viewer_ids().to_vec();
    for (i, &v) in ids.iter().enumerate() {
        session
            .request_join(v, ViewId::new((i % 8) as u32))
            .expect("valid");
    }
    session.run_to_idle();
    session
}

#[test]
fn kappa_bound_holds_across_many_seeds() {
    for seed in 0..5 {
        let session = joined_session(seed, 80, BandwidthProfile::uniform_mbps(0, 12));
        let kappa = session.scheme().kappa();
        for &v in session.viewer_ids() {
            let state = session.viewer(v).unwrap();
            if state.status != ViewerStatus::Connected || state.subs.is_empty() {
                continue;
            }
            let lo = state.layers().min().unwrap();
            let hi = state.layers().max().unwrap();
            assert!(hi - lo <= kappa, "seed {seed}, viewer {v}: {lo}..{hi}");
        }
    }
}

#[test]
fn skew_bound_is_exactly_dbuff() {
    for seed in 0..5 {
        let session = joined_session(seed + 50, 80, BandwidthProfile::uniform_mbps(0, 12));
        let dbuff = session.config().dbuff;
        for &v in session.viewer_ids() {
            let state = session.viewer(v).unwrap();
            if state.status != ViewerStatus::Connected || state.subs.is_empty() {
                continue;
            }
            let e2es: Vec<_> = state.subs.values().map(|s| s.e2e).collect();
            let skew = *e2es.iter().max().unwrap() - *e2es.iter().min().unwrap();
            assert!(
                skew <= dbuff,
                "viewer {v} skew {skew} exceeds dbuff {dbuff}"
            );
        }
    }
}

#[test]
fn no_stream_exceeds_dmax_or_the_max_layer() {
    let session = joined_session(123, 120, BandwidthProfile::uniform_mbps(0, 12));
    let max_layer = session.scheme().max_layer();
    let dmax = session.config().dmax;
    for &v in session.viewer_ids() {
        let state = session.viewer(v).unwrap();
        for sub in state.subs.values() {
            assert!(sub.layer <= max_layer);
            assert!(sub.e2e <= dmax);
            // Effective delay never beats the overlay path.
            assert!(sub.e2e >= sub.base_e2e || !sub.pushed_down);
        }
    }
}

#[test]
fn delayed_receive_only_ever_adds_delay() {
    let session = joined_session(9, 100, BandwidthProfile::uniform_mbps(0, 12));
    for &v in session.viewer_ids() {
        let state = session.viewer(v).unwrap();
        for sub in state.subs.values() {
            assert!(
                sub.e2e >= sub.base_e2e,
                "delayed receive cannot deliver earlier than the path"
            );
        }
    }
}

#[test]
fn layer_property_1_sharing_covers_children() {
    // A parent's shareable range (buffer + cache) must include every
    // child's actual layer — otherwise the child could not be fed.
    let session = joined_session(31, 100, BandwidthProfile::uniform_mbps(2, 12));
    let scheme = session.scheme();
    let dcache = session.config().dcache;
    let dbuff = session.config().dbuff;
    for &v in session.viewer_ids() {
        let state = session.viewer(v).unwrap();
        for (&sid, sub) in &state.subs {
            if let telecast_overlay::TreeParent::Viewer(p) = sub.parent {
                let parent = session.viewer(p).unwrap();
                let parent_sub = &parent.subs[&sid];
                // Hop parameters are not stored; bound with zero
                // propagation (the loosest lower edge).
                let (lo, hi) = scheme.shareable_range(
                    parent_sub.e2e,
                    SimDuration::ZERO,
                    SimDuration::ZERO,
                    dcache,
                    dbuff,
                );
                assert!(
                    sub.layer >= lo && sub.layer <= hi,
                    "child layer {} outside parent share range {lo}..{hi}",
                    sub.layer
                );
            }
        }
    }
}

#[test]
fn eq2_subscription_points_are_feasible_positions() {
    // For any target layer within bounds, Eq. 2 yields a frame number at
    // or behind the producer's latest frame (you cannot subscribe to the
    // future), and deeper layers never yield later frames.
    let scheme = LayerScheme::new(
        SimDuration::from_secs(60),
        SimDuration::from_millis(300),
        2,
        SimDuration::from_secs(65),
    );
    let mut rng = SimRng::seed_from_u64(4);
    for _ in 0..500 {
        let latest = FrameNumber::new(rng.range(1_000..1_000_000u64));
        let fps = *rng.choose(&[10u32, 15, 30]).unwrap();
        let dprop = SimDuration::from_millis(rng.range(1..150u64));
        let dproc = SimDuration::from_millis(rng.range(0..200u64));
        let mut last = None;
        for layer in 0..=scheme.max_layer() {
            let n = scheme.subscription_frame(latest, fps, layer, dprop, dproc);
            assert!(n <= latest, "subscription beyond the live edge");
            if let Some(prev) = last {
                assert!(n <= prev, "deeper layer subscribed later");
            }
            last = Some(n);
        }
    }
}

#[test]
fn push_down_fades_out_along_chains() {
    // Layer push-down positions streams at the top of the target layer,
    // so re-running push-down on the result is a no-op (the fade-out
    // property the paper claims for ℛ = τ·r).
    let scheme = LayerScheme::new(
        SimDuration::from_secs(60),
        SimDuration::from_millis(300),
        2,
        SimDuration::from_secs(65),
    );
    let mut rng = SimRng::seed_from_u64(8);
    for _ in 0..200 {
        let mut layers: Vec<u64> = (0..6).map(|_| rng.range(0..30u64)).collect();
        scheme.push_down(&mut layers);
        let mut again = layers.clone();
        let changed = scheme.push_down(&mut again);
        assert_eq!(changed, 0, "push-down is idempotent");
        assert_eq!(again, layers);
    }
}

//! Cross-crate churn-runtime guarantees: the storm scenario's JSON
//! export is byte-identical for equal seeds, outcomes do not depend on
//! the executor's thread count, and the media-layer workload bridge
//! drives the same spec through the scripted path.

use telecast::{SessionConfig, TelecastSession};
use telecast_bench::{run_churn, ChurnScenario};
use telecast_media::ChurnSpec;
use telecast_net::BandwidthProfile;
use telecast_sim::{parallel_map_with, SimRng, SimTime};

fn small_scenario(seed: u64) -> ChurnScenario {
    ChurnScenario {
        viewers: 400,
        minutes: 3,
        churn_per_minute: 0.05,
        backend: telecast::DelayModelChoice::Dense,
        seed,
        ..ChurnScenario::default()
    }
}

/// The acceptance bar of the churn-storm scenario: two runs with the
/// same seed must export byte-identical JSON.
#[test]
fn churn_storm_json_is_byte_identical_across_runs() {
    let a = run_churn(&small_scenario(9)).figure.to_json();
    let b = run_churn(&small_scenario(9)).figure.to_json();
    assert_eq!(a, b, "same-seed churn exports diverged");
    let c = run_churn(&small_scenario(10)).figure.to_json();
    assert_ne!(a, c, "different seeds produced identical exports");
}

/// Churn outcomes are a function of the scenario alone — running the
/// sweep on one worker or many must produce the same results in the
/// same order.
#[test]
fn churn_outcomes_are_thread_count_independent() {
    let scenarios: Vec<ChurnScenario> = (0..4).map(|i| small_scenario(20 + i)).collect();
    let serial = parallel_map_with(scenarios.clone(), 1, |s| run_churn(&s).figure.to_json());
    let parallel = parallel_map_with(scenarios, 4, |s| run_churn(&s).figure.to_json());
    assert_eq!(serial, parallel);
}

/// The media-layer bridge: the same [`ChurnSpec`] scripted into a finite
/// [`telecast_media::ViewerWorkload`] drives the session's batch path,
/// sustains an audience, and stays seed-deterministic.
#[test]
fn scripted_churn_bridge_drives_the_session() {
    let run = |seed: u64| {
        let config = SessionConfig::default()
            .with_outbound(BandwidthProfile::uniform_mbps(0, 12))
            .with_seed(seed);
        let mut session = TelecastSession::builder(config).viewers(150).build();
        let spec = ChurnSpec::steady_state(150, 0.2);
        let mut rng = SimRng::seed_from_u64(seed ^ 0x5EED);
        let workload = spec.to_workload(
            150,
            session.catalog().len(),
            SimTime::from_secs(240),
            &mut rng,
        );
        assert!(
            !workload.events().is_empty(),
            "bridge scripted no events before the horizon"
        );
        session.run_workload(&workload);
        (
            session.metrics().admitted_viewers.value(),
            session.metrics().victims.value(),
            session.cdn().outbound().used().as_kbps(),
        )
    };
    let a = run(4);
    assert_eq!(a, run(4));
    assert!(a.0 > 0, "scripted churn admitted nobody");
}

//! Cross-crate guarantees of predictive per-region autoscaling: on the
//! same seed, the forecast-driven controller admits more of a spike
//! storm (fewer rejected/retried joins) at no more provisioned
//! Mbps-hours than the reactive utilisation band; the per-region pool
//! split conserves the global pool; and the single-slot (global-scope)
//! configuration reproduces the pre-split provisioned series exactly.

use std::sync::OnceLock;

use telecast::{SessionConfig, TelecastSession};
use telecast_bench::{run_spike, SpikeOutcome, SpikeScenario};
use telecast_cdn::{split_capacity, AutoscalePolicy, PoolScope};
use telecast_net::{Bandwidth, Region};
use telecast_sim::SimTime;

/// The conformance storm: a small spike-storm instance (dense backend,
/// 400 steady viewers) with the scenario's default burst schedule and a
/// post-burst trough tail.
fn storm(predictive: bool) -> SpikeScenario {
    SpikeScenario {
        viewers: 400,
        minutes: 30,
        churn_per_minute: 0.3,
        day_minutes: 30,
        amplitude: 0.5,
        spike_multiplier: 6.0,
        backend: telecast::DelayModelChoice::Dense,
        seed: 61,
        pool_mbps: Some(1_600),
        autoscale: true,
        predictive,
        per_region: true,
    }
}

/// The predictive run several tests assert against, computed once (the
/// debug-build spike run is the expensive part of this suite).
fn predictive_outcome() -> &'static SpikeOutcome {
    static OUTCOME: OnceLock<SpikeOutcome> = OnceLock::new();
    OUTCOME.get_or_init(|| run_spike(&storm(true)))
}

/// The tentpole's acceptance bar: on equal seeds, predictive beats
/// reactive on rejected+retried joins at equal-or-lower provisioned
/// Mbps-hours.
#[test]
fn predictive_beats_reactive_on_the_same_seed() {
    let reactive = run_spike(&storm(false));
    let predictive = predictive_outcome();

    let reactive_bad = reactive.rejected_joins + reactive.join_retries;
    let predictive_bad = predictive.rejected_joins + predictive.join_retries;
    assert!(
        predictive_bad < reactive_bad,
        "predictive {predictive_bad} rejected+retried should beat reactive {reactive_bad}"
    );
    assert!(
        predictive.acceptance_ratio >= reactive.acceptance_ratio,
        "predictive ρ {:.3} fell below reactive ρ {:.3}",
        predictive.acceptance_ratio,
        reactive.acceptance_ratio
    );
    assert!(
        predictive.provisioned_mbps_hours <= reactive.provisioned_mbps_hours,
        "predictive cost {:.0} Mbps-h exceeds reactive {:.0} Mbps-h",
        predictive.provisioned_mbps_hours,
        reactive.provisioned_mbps_hours
    );
    // Both controllers actually scaled, and the predictive one also
    // released capacity (the reactive laggard's blind spot).
    assert!(reactive.autoscale_ups > 0);
    assert!(predictive.autoscale_ups > 0);
    assert!(
        predictive.autoscale_downs > reactive.autoscale_downs,
        "the forecast never released capacity ahead of the troughs"
    );
    assert_eq!(predictive.retry_queue_len, 0, "parked joins never drained");
}

/// The spike-storm export is pure in the seed.
#[test]
fn spike_storm_json_is_byte_identical_per_seed() {
    let a = predictive_outcome().figure.to_json();
    let b = run_spike(&storm(true)).figure.to_json();
    assert_eq!(a, b, "same-seed spike exports diverged");
    let c = run_spike(&SpikeScenario {
        seed: 62,
        ..storm(true)
    })
    .figure
    .to_json();
    assert_ne!(a, c, "different seeds produced identical exports");
}

/// Per-region pools carry one provisioned series per region, and the
/// series respect the weight split at the start of the run.
#[test]
fn per_region_series_start_at_the_weight_split() {
    let outcome = predictive_outcome();
    assert_eq!(outcome.provisioned_by_region.len(), Region::ALL.len());
    let slots = split_capacity(Bandwidth::from_mbps(1_600), PoolScope::PerRegion);
    for (slot, (label, points)) in outcome.provisioned_by_region.iter().enumerate() {
        let first = points.first().expect("series sampled").1;
        assert_eq!(
            first,
            slots[slot].as_mbps_f64(),
            "series {label} does not start at the region's split share"
        );
    }
    // Conservation at t=0: the per-region shares sum to the global pool.
    let sum: f64 = outcome
        .provisioned_by_region
        .iter()
        .map(|(_, points)| points.first().unwrap().1)
        .sum();
    assert_eq!(sum, 1_600.0);
}

/// In the single-region (global-scope) configuration, the per-slot
/// provisioned series IS the aggregate series — the pre-split behaviour
/// reproduced exactly, point for point.
#[test]
fn single_slot_series_reproduces_the_global_series() {
    let policy = AutoscalePolicy::for_pool(Bandwidth::from_mbps(150), Bandwidth::from_mbps(2_400));
    let config = SessionConfig::default()
        .with_cdn(
            telecast_cdn::CdnConfig::default()
                .with_outbound(Bandwidth::from_mbps(150))
                .with_pool_scope(PoolScope::Global),
        )
        .with_monitor_period(telecast_sim::SimDuration::from_secs(10))
        .with_autoscale(policy)
        .with_seed(7);
    let mut session = TelecastSession::builder(config).viewers(300).build();
    session.start_churn(
        telecast_media::ChurnSpec::steady_state(300, 0.3),
        SimTime::from_secs(600),
        300,
    );
    session.run_until(SimTime::from_secs(600));
    let m = session.metrics();
    assert_eq!(m.provisioned_by_slot.len(), 1, "global scope has one slot");
    assert!(
        m.autoscale_ups.value() > 0,
        "the under-provisioned pool never scaled"
    );
    // Every aggregate sample appears in the slot series with the same
    // value (the slot series may carry extra monitor samples between
    // scale actions, but never a different value for the same instant).
    let slot = &m.provisioned_by_slot[0];
    for &(at, value) in m.provisioned_cdn_mbps.points() {
        let matching = slot
            .points()
            .iter()
            .rev()
            .find(|&&(slot_at, _)| slot_at <= at)
            .map(|&(_, v)| v);
        assert_eq!(
            matching,
            Some(value),
            "slot series diverged from the aggregate at t={at:?}"
        );
    }
}

//! Reproducibility: identical configuration + workload ⇒ identical
//! results, different seeds ⇒ different stochastic inputs; the property
//! every figure of EXPERIMENTS.md relies on.

use telecast::{PlacementStrategy, SessionConfig, TelecastSession};
use telecast_media::{ArrivalModel, ViewChoice, ViewerWorkload};
use telecast_net::BandwidthProfile;
use telecast_sim::{SimDuration, SimRng};

#[derive(Debug, PartialEq)]
struct Fingerprint {
    acceptance: u64, // scaled to avoid float comparison pitfalls
    admitted: u64,
    rejected: u64,
    cdn_kbps: u64,
    victims: u64,
    messages: u64,
    join_count: usize,
    layer_sum: u64,
}

fn fingerprint(seed: u64, placement: PlacementStrategy) -> Fingerprint {
    let mut config = SessionConfig::default()
        .with_seed(seed)
        .with_outbound(BandwidthProfile::uniform_mbps(0, 12));
    config.placement = placement;
    if matches!(placement, PlacementStrategy::Random { .. }) {
        config.layering_enabled = false;
    }
    let mut session = TelecastSession::builder(config).viewers(120).build();
    let mut rng = SimRng::seed_from_u64(seed ^ 0xABCD);
    let workload = ViewerWorkload::builder(120, 8)
        .arrivals(ArrivalModel::Poisson {
            mean_gap: SimDuration::from_millis(30),
        })
        .view_choice(ViewChoice::Zipf { s: 1.0 })
        .view_changes(1.0, SimDuration::from_secs(30))
        .departures(0.25, SimDuration::from_secs(60))
        .build(&mut rng);
    session.run_workload(&workload);
    let m = session.metrics();
    Fingerprint {
        acceptance: (m.acceptance_ratio() * 1e9) as u64,
        admitted: m.admitted_viewers.value(),
        rejected: m.rejected_viewers.value(),
        cdn_kbps: session.cdn().outbound().used().as_kbps(),
        victims: m.victims.value(),
        messages: m.subscription_messages.value(),
        join_count: m.join_delays_ms.len(),
        layer_sum: session.layer_snapshot().iter().sum(),
    }
}

#[test]
fn push_down_runs_are_bit_identical() {
    assert_eq!(
        fingerprint(1, PlacementStrategy::PushDown),
        fingerprint(1, PlacementStrategy::PushDown)
    );
}

#[test]
fn random_baseline_runs_are_bit_identical() {
    assert_eq!(
        fingerprint(2, PlacementStrategy::Random { probes: 1 }),
        fingerprint(2, PlacementStrategy::Random { probes: 1 })
    );
}

#[test]
fn fifo_runs_are_bit_identical() {
    assert_eq!(
        fingerprint(3, PlacementStrategy::Fifo),
        fingerprint(3, PlacementStrategy::Fifo)
    );
}

#[test]
fn different_seeds_differ() {
    assert_ne!(
        fingerprint(10, PlacementStrategy::PushDown),
        fingerprint(11, PlacementStrategy::PushDown)
    );
}

#[test]
fn workload_scripts_are_reproducible() {
    let build = |seed| {
        let mut rng = SimRng::seed_from_u64(seed);
        ViewerWorkload::builder(500, 8)
            .arrivals(ArrivalModel::Poisson {
                mean_gap: SimDuration::from_millis(10),
            })
            .view_choice(ViewChoice::Zipf { s: 1.2 })
            .view_changes(2.0, SimDuration::from_secs(60))
            .departures(0.4, SimDuration::from_secs(90))
            .build(&mut rng)
    };
    assert_eq!(build(42), build(42));
    assert_ne!(build(42), build(43));
}

// ---------------------------------------------------------------------
// Sharded runtime: the mega_storm figure must be byte-identical across
// worker counts (threads only map shards onto OS threads) and across
// repetitions of the same seed.
// ---------------------------------------------------------------------

fn small_mega(seed: u64, threads: usize) -> String {
    use telecast::DelayModelChoice;
    use telecast_bench::{run_mega, MegaScenario};
    run_mega(&MegaScenario {
        viewers: 800,
        minutes: 2,
        churn_per_minute: 0.1,
        backend: DelayModelChoice::Dense,
        seed,
        threads,
        epoch_secs: 5,
        ..MegaScenario::default()
    })
    .figure
    .to_json()
}

#[test]
fn sharded_mega_storm_json_is_thread_count_independent() {
    for seed in [21, 22] {
        let reference = small_mega(seed, 1);
        for threads in [2, 4, 8] {
            assert_eq!(
                reference,
                small_mega(seed, threads),
                "seed {seed} diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn sharded_mega_storm_seeds_differ() {
    assert_ne!(small_mega(31, 2), small_mega(32, 2));
}

// ---------------------------------------------------------------------
// Property: the cross-shard outbox merge reproduces the order a single
// global event loop would have fired the same effects in — the merge
// key (time, shard, seq) is a faithful stand-in for the engine's
// (time, global-seq) FIFO tie-break when effects are stamped shard by
// shard.
// ---------------------------------------------------------------------

#[test]
fn shard_merge_preserves_global_event_order() {
    use telecast_sim::{merge_outboxes, Engine, Outbox, SimTime};

    let mut rng = SimRng::seed_from_u64(0x00DD_5EED);
    for _ in 0..25 {
        let shard_count = rng.range(2..=6usize);
        // A single-loop reference engine schedules every effect in the
        // same shard-major order the outboxes stamp them in.
        let mut reference: Engine<(usize, u64)> = Engine::new();
        let mut outboxes = Vec::new();
        for shard in 0..shard_count {
            let mut outbox: Outbox<u64> = Outbox::new(shard);
            let events = rng.range(0..=30usize);
            let mut at = SimTime::ZERO;
            for _ in 0..events {
                at += telecast_sim::SimDuration::from_millis(rng.range(0..=5u64));
                let seq = outbox.emitted();
                outbox.push(at, seq);
                reference.schedule_at(at, (shard, seq));
            }
            outboxes.push(outbox.take());
        }
        let merged: Vec<(usize, u64)> = merge_outboxes(outboxes)
            .into_iter()
            .map(|e| (e.from, e.msg))
            .collect();
        let fired: Vec<(usize, u64)> =
            std::iter::from_fn(|| reference.pop().map(|f| f.payload)).collect();
        assert_eq!(merged, fired, "merge order diverged from the single loop");
    }
}

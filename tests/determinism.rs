//! Reproducibility: identical configuration + workload ⇒ identical
//! results, different seeds ⇒ different stochastic inputs; the property
//! every figure of EXPERIMENTS.md relies on.

use telecast::{PlacementStrategy, SessionConfig, TelecastSession};
use telecast_media::{ArrivalModel, ViewChoice, ViewerWorkload};
use telecast_net::BandwidthProfile;
use telecast_sim::{SimDuration, SimRng};

#[derive(Debug, PartialEq)]
struct Fingerprint {
    acceptance: u64, // scaled to avoid float comparison pitfalls
    admitted: u64,
    rejected: u64,
    cdn_kbps: u64,
    victims: u64,
    messages: u64,
    join_count: usize,
    layer_sum: u64,
}

fn fingerprint(seed: u64, placement: PlacementStrategy) -> Fingerprint {
    let mut config = SessionConfig::default()
        .with_seed(seed)
        .with_outbound(BandwidthProfile::uniform_mbps(0, 12));
    config.placement = placement;
    if matches!(placement, PlacementStrategy::Random { .. }) {
        config.layering_enabled = false;
    }
    let mut session = TelecastSession::builder(config).viewers(120).build();
    let mut rng = SimRng::seed_from_u64(seed ^ 0xABCD);
    let workload = ViewerWorkload::builder(120, 8)
        .arrivals(ArrivalModel::Poisson {
            mean_gap: SimDuration::from_millis(30),
        })
        .view_choice(ViewChoice::Zipf { s: 1.0 })
        .view_changes(1.0, SimDuration::from_secs(30))
        .departures(0.25, SimDuration::from_secs(60))
        .build(&mut rng);
    session.run_workload(&workload);
    let m = session.metrics();
    Fingerprint {
        acceptance: (m.acceptance_ratio() * 1e9) as u64,
        admitted: m.admitted_viewers.value(),
        rejected: m.rejected_viewers.value(),
        cdn_kbps: session.cdn().outbound().used().as_kbps(),
        victims: m.victims.value(),
        messages: m.subscription_messages.value(),
        join_count: m.join_delays_ms.len(),
        layer_sum: session.layer_snapshot().iter().sum(),
    }
}

#[test]
fn push_down_runs_are_bit_identical() {
    assert_eq!(
        fingerprint(1, PlacementStrategy::PushDown),
        fingerprint(1, PlacementStrategy::PushDown)
    );
}

#[test]
fn random_baseline_runs_are_bit_identical() {
    assert_eq!(
        fingerprint(2, PlacementStrategy::Random { probes: 1 }),
        fingerprint(2, PlacementStrategy::Random { probes: 1 })
    );
}

#[test]
fn fifo_runs_are_bit_identical() {
    assert_eq!(
        fingerprint(3, PlacementStrategy::Fifo),
        fingerprint(3, PlacementStrategy::Fifo)
    );
}

#[test]
fn different_seeds_differ() {
    assert_ne!(
        fingerprint(10, PlacementStrategy::PushDown),
        fingerprint(11, PlacementStrategy::PushDown)
    );
}

#[test]
fn workload_scripts_are_reproducible() {
    let build = |seed| {
        let mut rng = SimRng::seed_from_u64(seed);
        ViewerWorkload::builder(500, 8)
            .arrivals(ArrivalModel::Poisson {
                mean_gap: SimDuration::from_millis(10),
            })
            .view_choice(ViewChoice::Zipf { s: 1.2 })
            .view_changes(2.0, SimDuration::from_secs(60))
            .departures(0.4, SimDuration::from_secs(90))
            .build(&mut rng)
    };
    assert_eq!(build(42), build(42));
    assert_ne!(build(42), build(43));
}

//! Cross-crate view-switching guarantees: the view-storm scenario's
//! JSON export is byte-identical for equal seeds and independent of the
//! executor's thread count, and the per-view prune pass demonstrably
//! shrinks an abandoned view's overlay — folding its CDN fragments and
//! retiring the drained groups — without stranding anyone who stayed.

use telecast::{DelayModelChoice, SessionConfig, TelecastSession};
use telecast_bench::{run_view_storm, ViewStormScenario};
use telecast_media::ViewId;
use telecast_net::BandwidthProfile;
use telecast_sim::parallel_map_with;

fn small_scenario(seed: u64) -> ViewStormScenario {
    ViewStormScenario {
        viewers: 250,
        minutes: 3,
        backend: DelayModelChoice::Dense,
        seed,
        ..ViewStormScenario::default()
    }
}

/// The acceptance bar of the view-storm scenario: two runs with the
/// same seed must export byte-identical JSON.
#[test]
fn view_storm_json_is_byte_identical_across_runs() {
    let a = run_view_storm(&small_scenario(3)).figure.to_json();
    let b = run_view_storm(&small_scenario(3)).figure.to_json();
    assert_eq!(a, b, "same-seed view storms exported diverging JSON");
    let c = run_view_storm(&small_scenario(4)).figure.to_json();
    assert_ne!(a, c, "different seeds produced identical exports");
}

/// View-storm outcomes are a function of the scenario alone — running
/// the runs on one worker or many must produce the same JSON in the
/// same order.
#[test]
fn view_storm_outcomes_are_thread_count_independent() {
    let scenarios: Vec<ViewStormScenario> = (0..4).map(|i| small_scenario(30 + i)).collect();
    let serial = parallel_map_with(scenarios.clone(), 1, |s| {
        run_view_storm(&s).figure.to_json()
    });
    let threaded = parallel_map_with(scenarios, 4, |s| run_view_storm(&s).figure.to_json());
    assert_eq!(serial, threaded);
}

/// A session split over two views, then emptied of one: everyone on the
/// abandoned view switches away.
fn abandon_one_view(config: SessionConfig) -> TelecastSession {
    let mut session = TelecastSession::builder(config).viewers(120).build();
    let ids = session.viewer_ids().to_vec();
    let (kept, abandoned) = (ViewId::new(0), ViewId::new(1));
    for (i, &viewer) in ids.iter().enumerate() {
        let view = if i % 2 == 0 { kept } else { abandoned };
        session.request_join(viewer, view).unwrap();
    }
    session.run_to_idle();
    assert!(
        session.view_group_population(abandoned).unwrap_or(0) > 0,
        "the to-be-abandoned view never built an audience"
    );
    for &viewer in &ids {
        // Rejected joins leave some viewers disconnected; skip them.
        let _ = session.request_view_change(viewer, kept);
    }
    session.run_to_idle();
    session
}

fn two_view_config(prune_floor: Option<usize>) -> SessionConfig {
    let config = SessionConfig::default()
        .with_outbound(BandwidthProfile::uniform_mbps(2, 14))
        .with_delay_model(DelayModelChoice::Dense)
        .with_seed(0xAB_0D01);
    match prune_floor {
        Some(floor) => config.with_prune_floor(floor),
        None => config,
    }
}

/// With the prune pass armed, abandoning a view shrinks its overlay all
/// the way down: the drained groups are retired (no scope keeps the
/// view), fragments were folded along the way, and the viewers who
/// stayed keep their trees.
#[test]
fn prune_retires_an_abandoned_views_trees() {
    let session = abandon_one_view(two_view_config(Some(128)));
    let abandoned = ViewId::new(1);
    assert_eq!(
        session.view_group_population(abandoned),
        None,
        "drained groups of the abandoned view were not retired"
    );
    assert_eq!(session.view_tree_population(abandoned), 0);
    let m = session.metrics();
    assert!(m.groups_retired.value() > 0, "no group retirement counted");
    assert!(
        m.fragments_merged.value() > 0,
        "the shrinking view never folded a CDN fragment"
    );
    assert!(
        m.prune_reclaimed_kbps.value() > 0,
        "fragment folds returned no CDN capacity"
    );
    assert!(
        session.view_tree_population(ViewId::new(0)) > 0,
        "pruning the abandoned view stranded the kept view"
    );
    assert!(session.connected_viewers() > 0);
}

/// Without the floor (the default), the abandoned view's empty groups
/// stay in place — the pre-existing behaviour is untouched.
#[test]
fn default_config_keeps_abandoned_groups() {
    let session = abandon_one_view(two_view_config(None));
    let abandoned = ViewId::new(1);
    assert_eq!(
        session.view_group_population(abandoned),
        Some(0),
        "pruning ran despite prune_member_floor being disabled"
    );
    let m = session.metrics();
    assert_eq!(m.groups_retired.value(), 0);
    assert_eq!(m.fragments_merged.value(), 0);
}

//! System adaptation (§VI) across crates: view changes, departures,
//! abrupt failures, victim recovery, and resource accounting integrity
//! under churn.

use telecast::{SessionConfig, TelecastSession, ViewerStatus};
use telecast_cdn::CdnConfig;
use telecast_media::{ArrivalModel, ViewChoice, ViewId, ViewerWorkload};
use telecast_net::{Bandwidth, BandwidthProfile};
use telecast_overlay::TreeParent;
use telecast_sim::{SimDuration, SimRng};

fn config(seed: u64) -> SessionConfig {
    SessionConfig::default()
        .with_seed(seed)
        .with_outbound(BandwidthProfile::uniform_mbps(2, 12))
}

/// No connected viewer may be fed by a non-connected parent, and every
/// CDN-parented stream except temporary serves must hold a lease.
fn assert_upstreams_live(session: &TelecastSession) {
    for &v in session.viewer_ids() {
        let state = session.viewer(v).unwrap();
        if state.status != ViewerStatus::Connected {
            continue;
        }
        for (sid, sub) in &state.subs {
            match sub.parent {
                TreeParent::Cdn => {
                    assert!(
                        sub.lease.is_some(),
                        "viewer {v} stream {sid}: CDN parent without lease"
                    );
                }
                TreeParent::Viewer(p) => {
                    let parent = session.viewer(p).unwrap();
                    assert_eq!(
                        parent.status,
                        ViewerStatus::Connected,
                        "viewer {v} stream {sid} fed by dead parent {p}"
                    );
                }
            }
        }
    }
}

#[test]
fn view_change_storm_keeps_upstreams_live() {
    let mut session = TelecastSession::builder(config(1)).viewers(150).build();
    let mut rng = SimRng::seed_from_u64(2);
    let workload = ViewerWorkload::builder(150, 8)
        .arrivals(ArrivalModel::Staggered {
            gap: SimDuration::from_millis(20),
        })
        .view_choice(ViewChoice::Zipf { s: 1.0 })
        .view_changes(3.0, SimDuration::from_secs(40))
        .build(&mut rng);
    session.run_workload(&workload);
    assert_upstreams_live(&session);
    assert!(session.metrics().view_change_delays_ms.len() > 200);
}

#[test]
fn mass_departure_releases_all_resources() {
    let mut session = TelecastSession::builder(config(3)).viewers(100).build();
    let ids = session.viewer_ids().to_vec();
    for &v in &ids {
        session.request_join(v, ViewId::new(0)).expect("valid");
    }
    session.run_to_idle();
    let used_before = session.cdn().outbound().used();
    assert!(!used_before.is_zero());
    for &v in &ids {
        let _ = session.request_depart(v);
    }
    session.run_to_idle();
    // Everyone left: no CDN bandwidth may remain reserved.
    assert_eq!(
        session.cdn().outbound().used(),
        Bandwidth::ZERO,
        "CDN leases leaked after full departure"
    );
    assert_eq!(session.cdn().active_leases(), 0);
    for &v in &ids {
        let state = session.viewer(v).unwrap();
        assert_eq!(state.status, ViewerStatus::Idle);
        assert_eq!(state.stream_count(), 0);
        assert_eq!(state.ports.inbound.used(), Bandwidth::ZERO);
        assert_eq!(state.ports.outbound.used(), Bandwidth::ZERO);
    }
}

#[test]
fn cascading_failures_never_wedge_the_session() {
    let mut session = TelecastSession::builder(config(4)).viewers(80).build();
    let ids = session.viewer_ids().to_vec();
    for &v in &ids {
        session.request_join(v, ViewId::new(0)).expect("valid");
    }
    session.run_to_idle();
    // Fail every third viewer abruptly, including tree roots.
    for &v in ids.iter().step_by(3) {
        let _ = session.fail_viewer(v);
    }
    session.run_to_idle();
    assert_upstreams_live(&session);
    // Survivors still cover their mandatory sites or were degraded
    // gracefully; nobody points at a failed node.
    let connected = ids
        .iter()
        .filter(|&&v| session.viewer(v).unwrap().status == ViewerStatus::Connected)
        .count();
    assert!(connected >= ids.len() / 2);
}

#[test]
fn victims_survive_at_their_layer_when_cdn_has_room() {
    let mut session = TelecastSession::builder(config(5)).viewers(40).build();
    let ids = session.viewer_ids().to_vec();
    for &v in &ids {
        session.request_join(v, ViewId::new(0)).expect("valid");
    }
    session.run_to_idle();
    // Snapshot layers, then fail the strongest forwarders (CDN children).
    let layers_before: std::collections::BTreeMap<_, _> = ids
        .iter()
        .map(|&v| (v, session.viewer(v).unwrap().max_layer()))
        .collect();
    // Fail the five earliest (strongest, nearest the root) viewers.
    for &v in ids.iter().take(5) {
        let _ = session.fail_viewer(v);
    }
    session.run_to_idle();
    assert!(session.metrics().victims.value() > 0);
    for &v in ids.iter().skip(5) {
        let state = session.viewer(v).unwrap();
        if state.status != ViewerStatus::Connected {
            continue;
        }
        if let (Some(before), Some(after)) = (layers_before[&v], state.max_layer()) {
            // Recovery may improve (reposition) or keep the layer, and
            // push-down may deepen it — but never beyond the admissible
            // maximum.
            assert!(after <= session.scheme().max_layer());
            let _ = before;
        }
    }
    assert_upstreams_live(&session);
}

#[test]
fn rejected_viewers_can_retry_after_capacity_frees() {
    // Tiny CDN, no P2P: only 2 viewers fit (2 × 6 × 2 Mbps = 24 Mbps).
    let tight = SessionConfig::default()
        .with_seed(6)
        .with_outbound(BandwidthProfile::fixed_mbps(0))
        .with_cdn(CdnConfig::default().with_outbound(Bandwidth::from_mbps(24)));
    let mut session = TelecastSession::builder(tight).viewers(3).build();
    let ids = session.viewer_ids().to_vec();
    for &v in &ids {
        session.request_join(v, ViewId::new(0)).expect("valid");
    }
    session.run_to_idle();
    let rejected = ids
        .iter()
        .copied()
        .find(|&v| session.viewer(v).unwrap().status == ViewerStatus::Rejected)
        .expect("one viewer must be rejected");
    // A connected viewer leaves; the rejected one retries successfully.
    let connected = ids
        .iter()
        .copied()
        .find(|&v| session.viewer(v).unwrap().status == ViewerStatus::Connected)
        .expect("someone connected");
    session.request_depart(connected).expect("connected");
    session.run_to_idle();
    session
        .request_join(rejected, ViewId::new(0))
        .expect("retry allowed");
    session.run_to_idle();
    assert_eq!(
        session.viewer(rejected).unwrap().status,
        ViewerStatus::Connected,
        "freed capacity admits the retry"
    );
}

#[test]
fn periodic_adaptation_tracks_network_drift() {
    // Enable the §VI delay-layer adaptation loop and stretch the session
    // across several 15-minute trace epochs: delays drift, viewers
    // re-derive layers, and the κ bound must hold at every quiescent
    // point.
    let mut config = config(8);
    config.adaptation_period = Some(SimDuration::from_secs(120));
    let mut session = TelecastSession::builder(config).viewers(60).build();
    let ids = session.viewer_ids().to_vec();
    for &v in &ids {
        session.request_join(v, ViewId::new(0)).expect("valid");
    }
    // Keep the engine busy across two epochs with staggered churn so the
    // adaptation loop keeps ticking.
    for (i, &v) in ids.iter().enumerate().take(20) {
        session.run_until(telecast_sim::SimTime::from_secs(60 * (i as u64 + 1)));
        let _ = session.request_view_change(v, ViewId::new(1 + (i % 7) as u32));
    }
    session.run_to_idle();
    assert!(
        session.now() >= telecast_sim::SimTime::from_secs(16 * 60),
        "session spanned at least one epoch boundary, now={}",
        session.now()
    );
    let kappa = session.scheme().kappa();
    for &v in &ids {
        let state = session.viewer(v).unwrap();
        if state.status != ViewerStatus::Connected || state.subs.is_empty() {
            continue;
        }
        let lo = state.layers().min().unwrap();
        let hi = state.layers().max().unwrap();
        assert!(hi - lo <= kappa, "κ bound broken after drift: {lo}..{hi}");
    }
    assert_upstreams_live(&session);
}

#[test]
fn adaptation_loop_terminates() {
    // The self-scheduling tick must not keep the engine alive forever.
    let mut config = config(9);
    config.adaptation_period = Some(SimDuration::from_secs(30));
    let mut session = TelecastSession::builder(config).viewers(10).build();
    for v in session.viewer_ids().to_vec() {
        session.request_join(v, ViewId::new(0)).expect("valid");
    }
    session.run_to_idle(); // would hang if ticks self-perpetuated
    assert!(session.metrics().admitted_viewers.value() > 0);
}

#[test]
fn temporary_view_change_serves_are_always_reconciled() {
    let mut session = TelecastSession::builder(config(7)).viewers(60).build();
    let ids = session.viewer_ids().to_vec();
    for &v in &ids {
        session.request_join(v, ViewId::new(0)).expect("valid");
    }
    session.run_to_idle();
    for (i, &v) in ids.iter().enumerate() {
        let _ = session.request_view_change(v, ViewId::new(1 + (i % 7) as u32));
    }
    session.run_to_idle();
    for &v in &ids {
        let state = session.viewer(v).unwrap();
        assert!(
            state.temp_leases.is_empty(),
            "viewer {v} kept temporary CDN serves after settling"
        );
    }
}

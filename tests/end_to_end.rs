//! End-to-end integration: producer traces → CDN ingest → overlay
//! placement → viewer buffers → synchronous rendering, across crates.

use telecast::{SessionConfig, TelecastSession, ViewerBuffer, ViewerStatus};
use telecast_cdn::Distribution;
use telecast_media::{ProducerSite, SyntheticTeeveTrace, TeeveStreamConfig, ViewCatalog, ViewId};
use telecast_net::BandwidthProfile;
use telecast_overlay::TreeParent;
use telecast_sim::{SimDuration, SimTime};

#[test]
fn producers_feed_cdn_distribution_storage() {
    let [site_a, site_b] = ProducerSite::teeve_pair();
    let mut distribution = Distribution::new(600);
    for site in [&site_a, &site_b] {
        for stream in site.streams() {
            let mut trace =
                SyntheticTeeveTrace::new(stream.id, TeeveStreamConfig::for_stream(stream), 1);
            for frame in trace.frames_until(SimTime::from_secs(10)) {
                distribution.ingest(frame);
            }
        }
    }
    assert_eq!(distribution.stream_count(), 16);
    for site in [&site_a, &site_b] {
        for stream in site.streams() {
            let stats = distribution.stats(stream.id).expect("ingested");
            assert_eq!(stats.frames, 100); // 10 fps × 10 s
            assert_eq!(stats.latest_frame.value(), 99);
        }
    }
}

#[test]
fn full_session_pipeline_renders_synchronously() {
    let config = SessionConfig::default()
        .with_outbound(BandwidthProfile::uniform_mbps(2, 12))
        .with_seed(17);
    let mut session = TelecastSession::builder(config).viewers(60).build();
    let ids = session.viewer_ids().to_vec();
    for (i, &v) in ids.iter().enumerate() {
        session
            .request_join(v, ViewId::new((i % 4) as u32))
            .expect("valid");
    }
    session.run_to_idle();

    // Drive frames through every connected viewer's buffer at the
    // effective delays the overlay computed; everyone must render.
    let dbuff = session.config().dbuff;
    let dcache = session.config().dcache;
    let horizon = SimTime::from_secs(4);
    let mut rendered = 0usize;
    for &v in &ids {
        let state = session.viewer(v).expect("pool viewer");
        if state.status != ViewerStatus::Connected || state.subs.is_empty() {
            continue;
        }
        let mut buffer = ViewerBuffer::new(dbuff, dcache);
        for (&sid, sub) in &state.subs {
            let mut trace = SyntheticTeeveTrace::new(sid, TeeveStreamConfig::default(), 9);
            for frame in trace.frames_until(horizon) {
                buffer.receive(frame, frame.captured_at + sub.e2e);
            }
        }
        let slowest = state.subs.values().map(|s| s.e2e).max().expect("non-empty");
        let render_at = SimTime::from_secs(2) + slowest;
        let expected: Vec<_> = state.subs.keys().copied().collect();
        let frames = buffer
            .try_render(&expected, render_at, SimDuration::from_millis(100))
            .unwrap_or_else(|| panic!("viewer {v} cannot render a synchronous 4D view"));
        assert_eq!(frames.len(), expected.len());
        rendered += 1;
    }
    assert!(rendered > 40, "most of the audience renders ({rendered})");
}

#[test]
fn overlay_parents_actually_subscribe_to_the_stream() {
    let config = SessionConfig::default()
        .with_outbound(BandwidthProfile::fixed_mbps(8))
        .with_seed(5);
    let mut session = TelecastSession::builder(config).viewers(50).build();
    for v in session.viewer_ids().to_vec() {
        session.request_join(v, ViewId::new(2)).expect("valid");
    }
    session.run_to_idle();
    for &v in session.viewer_ids() {
        let state = session.viewer(v).unwrap();
        for (&sid, sub) in &state.subs {
            if let TreeParent::Viewer(p) = sub.parent {
                let parent = session.viewer(p).expect("parent in pool");
                assert!(
                    parent.subs.contains_key(&sid),
                    "parent {p} forwards {sid} without receiving it"
                );
                // Delay is strictly downstream of the parent's.
                assert!(sub.e2e > parent.subs[&sid].e2e);
            }
        }
    }
}

#[test]
fn routing_tables_reflect_tree_children() {
    let config = SessionConfig::default()
        .with_outbound(BandwidthProfile::fixed_mbps(10))
        .with_seed(6);
    let mut session = TelecastSession::builder(config).viewers(30).build();
    for v in session.viewer_ids().to_vec() {
        session.request_join(v, ViewId::new(0)).expect("valid");
    }
    session.run_to_idle();
    // Every child found in a parent's subscription list appears in that
    // parent's session routing table (Table I).
    let mut forwarded_edges = 0usize;
    for &v in session.viewer_ids() {
        let state = session.viewer(v).unwrap();
        for (&sid, sub) in &state.subs {
            if let TreeParent::Viewer(p) = sub.parent {
                let parent = session.viewer(p).unwrap();
                let has_entry = parent
                    .routing
                    .iter()
                    .any(|((s, _), entry)| *s == sid && entry.children().any(|c| c == v));
                assert!(has_entry, "routing table of {p} misses child {v} for {sid}");
                forwarded_edges += 1;
            }
        }
    }
    assert!(forwarded_edges > 0, "some P2P forwarding exists");
}

#[test]
fn catalog_views_cover_both_sites_with_three_streams_each() {
    let sites = ProducerSite::teeve_pair();
    let catalog = ViewCatalog::canonical(&sites, 3);
    assert_eq!(catalog.len(), 8);
    for view in catalog.iter() {
        assert_eq!(view.streams().count(), 6);
        let ordered = view.streams_by_priority();
        // The admission-mandatory streams (η = 1) lead the order.
        assert_eq!(ordered[0].eta, 1);
        assert_eq!(ordered[1].eta, 1);
        assert_ne!(ordered[0].stream.site(), ordered[1].stream.site());
    }
}

//! Multi-tenancy conformance: the capacity broker's conservation and
//! fairness invariants, noisy-neighbour isolation under the tenant-mix
//! scenario, consolidation efficiency against statically-split pools,
//! and byte-identity of the single-tenant broker path against the
//! committed scenario artifacts.

use std::fs;
use std::path::PathBuf;

use proptest::prelude::*;
use telecast::{DelayModelChoice, TenantFleet};
use telecast_bench::{
    autoscale_policy_for, run_churn, run_spike, run_tenant_mix, tenant_config, tenant_quota,
    zipf_split, ChurnScenario, SpikeScenario, TenantMixScenario,
};
use telecast_cdn::{CapacityBroker, CdnConfig, CdnLease, PoolScope, TenantId, TenantQuota};
use telecast_media::{ChurnSpec, SiteId, StreamId};
use telecast_net::{Bandwidth, Region};
use telecast_sim::{SimDuration, SimTime};

/// The repository's committed `results/` directory.
fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

// ---------------------------------------------------------------------
// Broker conservation — property test
// ---------------------------------------------------------------------

proptest! {
    /// Under any interleaving of quota-checked serves and releases
    /// across three tenants and every region, the broker's per-tenant
    /// ledgers always sum to exactly the pool-slot usage, nobody
    /// exceeds their ceiling, and releasing everything restores the
    /// pools to empty.
    #[test]
    fn broker_conserves_capacity_under_any_traffic(
        ops in proptest::collection::vec(
            (0u32..3, 0usize..5, 1u64..40_000, any::<bool>()),
            1..120,
        )
    ) {
        let mut broker = CapacityBroker::new(
            CdnConfig::default()
                .with_outbound(Bandwidth::from_mbps(500))
                .with_pool_scope(PoolScope::PerRegion),
        );
        let tenants: Vec<TenantId> = [
            TenantQuota { floor_percent: 20, ceiling_percent: 70 },
            TenantQuota { floor_percent: 30, ceiling_percent: 100 },
            TenantQuota { floor_percent: 10, ceiling_percent: 40 },
        ]
        .into_iter()
        .map(|q| broker.register(q))
        .collect();
        let mut held: Vec<CdnLease> = Vec::new();
        let mut next_stream = 0u16;

        for &(t, r, kbps, is_serve) in &ops {
            let tenant = tenants[t as usize];
            let region = Region::ALL[r];
            if is_serve || held.is_empty() {
                next_stream += 1;
                let stream = StreamId::new(SiteId::new(0), next_stream);
                let bw = Bandwidth::from_kbps(kbps);
                let admissible = broker.can_serve_in(tenant, bw, region);
                match broker.serve(tenant, stream, bw, region) {
                    Ok(lease) => {
                        prop_assert!(admissible, "serve admitted what can_serve_in refused");
                        held.push(lease);
                    }
                    Err(_) => prop_assert!(!admissible, "serve refused what can_serve_in admitted"),
                }
            } else {
                // Deterministic pick: drain from the middle.
                let lease = held.remove(held.len() / 2);
                broker.release(lease);
            }

            // Conservation: tenant ledgers sum to the slot usage…
            for slot in 0..broker.cdn().pool_slots() {
                let by_tenant: u64 = tenants
                    .iter()
                    .map(|&t| broker.used_kbps(t, slot))
                    .sum();
                prop_assert_eq!(by_tenant, broker.cdn().pool(slot).used().as_kbps());
                // …and no tenant exceeds its ceiling share of the slot.
                for &tid in &tenants {
                    let cap = u128::from(broker.cdn().pool(slot).total().as_kbps())
                        * u128::from(broker.quota(tid).ceiling_percent)
                        / 100;
                    prop_assert!(u128::from(broker.used_kbps(tid, slot)) <= cap);
                }
            }
        }

        for lease in held.drain(..) {
            broker.release(lease);
        }
        for slot in 0..broker.cdn().pool_slots() {
            prop_assert_eq!(broker.cdn().pool(slot).used().as_kbps(), 0);
        }
    }
}

// ---------------------------------------------------------------------
// Isolation and efficiency — the tenant-mix headline
// ---------------------------------------------------------------------

fn mix_scenario() -> TenantMixScenario {
    TenantMixScenario {
        viewers: 600,
        tenants: 3,
        zipf: 1.0,
        minutes: 10,
        churn_per_minute: 0.3,
        day_minutes: 10,
        amplitude: 0.5,
        spike_multiplier: 6.0,
        backend: DelayModelChoice::Dense,
        seed: 47,
        pool_mbps: Some(6000),
        autoscale: true,
        predictive: true,
    }
}

/// Runs tenant `index` of the mix *alone* on a statically-split slice
/// of the shared pool (`1/M`-th of capacity and of the controller's
/// band), on the same seed and churn workload it gets inside the mix.
/// Returns (bad-join rate, provisioned Mbps-hours, served Mbps-hours).
fn run_solo(scenario: &TenantMixScenario, index: usize, audience: usize) -> (f64, f64, f64) {
    let m = scenario.tenants as u64;
    let slice = Bandwidth::from_kbps(scenario.pool().as_kbps() / m);
    let gateways = (audience * 2).max(2);
    let mut config = tenant_config(scenario, index).with_cdn(
        CdnConfig::default()
            .with_outbound(slice)
            .with_pool_scope(PoolScope::PerRegion),
    );
    if scenario.autoscale {
        config = config.with_autoscale(autoscale_policy_for(slice, gateways));
    }
    // Reuse the fleet runner with a single FULL tenant so the solo arm
    // goes through exactly the same barrier/controller code path.
    let epoch = config
        .autoscale
        .as_ref()
        .map(|p| p.period)
        .unwrap_or(SimDuration::from_secs(15));
    let mut fleet = TenantFleet::new(&config, epoch);
    let idx = fleet.add_tenant(&config, TenantQuota::FULL, gateways);
    let horizon = SimTime::from_secs(scenario.minutes * 60);
    let spec = ChurnSpec::steady_state(audience, scenario.churn_per_minute)
        .with_rate_profile(scenario.rate_profile(index));
    fleet.session_mut(idx).start_churn(spec, horizon, audience);
    fleet.run_until(horizon);
    let metrics = fleet.session(idx).metrics();
    let attempts = metrics.admitted_viewers.value() + metrics.rejected_viewers.value();
    let bad = if attempts == 0 {
        0.0
    } else {
        metrics.rejected_viewers.value() as f64 / attempts as f64
    };
    (
        bad,
        fleet.provisioned_mbps_hours_at(horizon),
        fleet.served_mbps_hours(idx),
    )
}

#[test]
fn quota_floors_bound_the_noisy_neighbour_and_sharing_beats_static_split() {
    let scenario = mix_scenario();
    let mix = run_tenant_mix(&scenario);
    let audiences = zipf_split(scenario.viewers, scenario.tenants as usize, scenario.zipf);
    assert_eq!(mix.audiences, audiences);

    // Tenant 0 bursts 6×/9× mid-run; tenants 1.. ride the plain wave.
    // Isolation: each quiet tenant's bad-join rate inside the mix stays
    // within a bounded factor of its solo run on a static 1/M slice —
    // the floor guarantees and fair arbitration keep the burster from
    // starving them (without quotas the burster could take the whole
    // shared pool and push neighbours toward 100% rejects).
    let mut solo_provisioned_total = 0.0;
    let mut solo_served_total = 0.0;
    for (i, &audience) in audiences.iter().enumerate() {
        let (solo_bad, solo_provisioned, solo_served) = run_solo(&scenario, i, audience);
        solo_provisioned_total += solo_provisioned;
        solo_served_total += solo_served;
        eprintln!(
            "tenant {i}: solo bad-join {solo_bad:.4} / mix {:.4}, solo provisioned {solo_provisioned:.1} served {solo_served:.1} / mix served {:.1} Mbps-h",
            mix.bad_join_rate_by_tenant[i],
            mix.served_mbps_hours_by_tenant[i],
        );
        if i == 0 {
            continue; // the burster is the perturbation, not the probe
        }
        let mix_bad = mix.bad_join_rate_by_tenant[i];
        let bound = (3.0 * solo_bad).max(0.10);
        assert!(
            mix_bad <= bound,
            "tenant {i}: bad-join rate {mix_bad:.4} in the mix exceeds \
             {bound:.4} (3× its solo rate {solo_bad:.4}, floor 0.10) — \
             the burster leaked through the quota floors"
        );
    }

    // Efficiency: the shared, quota-brokered pools provision fewer
    // Mbps-hours than the M statically-split pools serving the same
    // workloads — consolidation absorbs the burst with capacity the
    // quiet tenants were not using.
    assert!(
        mix.provisioned_mbps_hours < solo_provisioned_total,
        "shared pools provisioned {:.1} Mbps-h, statically-split pools {:.1} — \
         consolidation bought nothing",
        mix.provisioned_mbps_hours,
        solo_provisioned_total
    );
    // …and not by serving less: the consolidated pools deliver at least
    // the split arms' total served volume (the burster can grow into
    // idle neighbour capacity, so typically more).
    let mix_served_total: f64 = mix.served_mbps_hours_by_tenant.iter().sum();
    assert!(
        mix_served_total >= 0.99 * solo_served_total,
        "shared pools served {mix_served_total:.1} Mbps-h vs the split arms' \
         {solo_served_total:.1} — the provisioning win came out of service"
    );
}

#[test]
fn tenant_mix_is_seed_deterministic_and_fair_under_even_quotas() {
    let scenario = TenantMixScenario {
        spike_multiplier: 1.5,
        ..mix_scenario()
    };
    let a = run_tenant_mix(&scenario);
    let b = run_tenant_mix(&scenario);
    assert_eq!(a.figure.to_json(), b.figure.to_json());
    // With a barely-bursting headline tenant, acceptance across tenants
    // should be close — the spread is a fairness figure, not noise.
    assert!(
        a.acceptance_spread < 0.25,
        "acceptance spread {:.3} across equal-quota tenants",
        a.acceptance_spread
    );
    // Quotas for any M never oversubscribe the pool.
    for m in 1..=32 {
        tenant_quota(m).validate();
    }
}

// ---------------------------------------------------------------------
// Byte-identity of the single-tenant broker path
// ---------------------------------------------------------------------

/// The scaled-down replay pair: cheap enough for the default (debug)
/// test profile, committed as `results/tenancy_replay_{churn,spike}.json`.
/// The figures' `id` fields still read `churn_storm`/`spike_storm` —
/// they are the same generators at reduced scale; only the file stem
/// marks them as replay references.
fn replay_churn_scenario() -> ChurnScenario {
    ChurnScenario {
        viewers: 600,
        minutes: 3,
        churn_per_minute: 0.02,
        backend: DelayModelChoice::Coordinate,
        seed: 0xC4_0211,
        pool_mbps: None,
        autoscale: true,
    }
}

fn replay_spike_scenario() -> SpikeScenario {
    SpikeScenario {
        viewers: 500,
        minutes: 10,
        churn_per_minute: 0.30,
        day_minutes: 10,
        amplitude: 0.5,
        spike_multiplier: 6.0,
        backend: DelayModelChoice::Coordinate,
        seed: 0x51_1735,
        pool_mbps: None,
        autoscale: true,
        predictive: true,
        per_region: true,
    }
}

#[test]
fn single_tenant_broker_replays_the_committed_small_references_byte_identically() {
    let churn = run_churn(&replay_churn_scenario()).figure.to_json();
    let committed = fs::read_to_string(results_dir().join("tenancy_replay_churn.json"))
        .expect("missing results/tenancy_replay_churn.json — run the ignored regenerate test");
    assert_eq!(
        churn, committed,
        "churn replay diverged from the committed reference bytes"
    );

    let spike = run_spike(&replay_spike_scenario()).figure.to_json();
    let committed = fs::read_to_string(results_dir().join("tenancy_replay_spike.json"))
        .expect("missing results/tenancy_replay_spike.json — run the ignored regenerate test");
    assert_eq!(
        spike, committed,
        "spike replay diverged from the committed reference bytes"
    );
}

/// Full-size replay of the committed CI artifacts — the exact scenarios
/// the scenario-matrix runs (`churn_storm --viewers 20000 --minutes 5`,
/// `spike_storm --viewers 10000 --minutes 15 --autoscale --predictive`).
/// Minutes of work unoptimised, so opt in with
/// `cargo test --release -p telecast-conformance --test tenancy -- --ignored`.
#[test]
#[ignore = "full-size replay; run in release"]
fn single_tenant_broker_replays_the_committed_ci_artifacts_byte_identically() {
    let churn = run_churn(&ChurnScenario {
        viewers: 20_000,
        minutes: 5,
        ..ChurnScenario::default()
    })
    .figure
    .to_json();
    let committed = fs::read_to_string(results_dir().join("churn_storm.json")).unwrap();
    assert_eq!(churn, committed, "results/churn_storm.json diverged");

    let defaults = SpikeScenario::default();
    let spike = run_spike(&SpikeScenario {
        viewers: 10_000,
        minutes: 15,
        day_minutes: 15,
        ..defaults
    })
    .figure
    .to_json();
    let committed = fs::read_to_string(results_dir().join("spike_storm.json")).unwrap();
    assert_eq!(spike, committed, "results/spike_storm.json diverged");
}

/// Regenerates the small replay references. Run after an *intentional*
/// behaviour change, then commit the two files:
/// `cargo test --release -p telecast-conformance --test tenancy -- --ignored regenerate`
#[test]
#[ignore = "writes the committed replay references"]
fn regenerate_small_replay_references() {
    let dir = results_dir();
    fs::write(
        dir.join("tenancy_replay_churn.json"),
        run_churn(&replay_churn_scenario()).figure.to_json(),
    )
    .unwrap();
    fs::write(
        dir.join("tenancy_replay_spike.json"),
        run_spike(&replay_spike_scenario()).figure.to_json(),
    )
    .unwrap();
}

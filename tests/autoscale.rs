//! Cross-crate guarantees of the elastic-CDN subsystem: an
//! under-provisioned pool with autoscaling beats the same pool held
//! static on the same seed, parked joins drain after scale-ups, and the
//! diurnal-wave scenario exports byte-identical JSON whose provisioned
//! capacity tracks the audience wave.

use telecast_bench::{run_churn, run_diurnal, ChurnScenario, DiurnalScenario};

/// An under-provisioned churn storm: 400 viewers against a 200 Mbps
/// starting pool (the historical provisioning would be 2000 Mbps).
fn tight_storm(seed: u64, autoscale: bool) -> ChurnScenario {
    ChurnScenario {
        viewers: 400,
        minutes: 6,
        churn_per_minute: 0.05,
        backend: telecast::DelayModelChoice::Dense,
        seed,
        pool_mbps: Some(200),
        autoscale,
    }
}

fn small_wave(seed: u64, autoscale: bool) -> DiurnalScenario {
    DiurnalScenario {
        viewers: 300,
        minutes: 30,
        churn_per_minute: 0.3,
        day_minutes: 10,
        amplitude: 0.9,
        backend: telecast::DelayModelChoice::Dense,
        seed,
        pool_mbps: Some(150),
        autoscale,
    }
}

/// The acceptance bar of the tentpole: on the same seed, the elastic
/// pool ends with a strictly higher acceptance ratio than the static
/// pool, and the retry queue drained after the scale-ups.
#[test]
fn autoscale_beats_the_static_pool_on_the_same_seed() {
    let static_run = run_churn(&tight_storm(42, false));
    let elastic_run = run_churn(&tight_storm(42, true));

    assert_eq!(static_run.autoscale_ups, 0);
    assert_eq!(
        static_run.final_provisioned_mbps, 200.0,
        "static pool moved without an autoscaler"
    );
    assert!(
        elastic_run.autoscale_ups > 0,
        "the saturated pool never scaled up"
    );
    assert!(
        elastic_run.acceptance_ratio > static_run.acceptance_ratio,
        "elastic {:.3} should beat static {:.3}",
        elastic_run.acceptance_ratio,
        static_run.acceptance_ratio
    );
    // Parked joins were retried and the queue drained: once the pool
    // grew past the demand no rejection re-parks, so nothing lingers.
    assert!(elastic_run.join_retries > 0, "no parked join was retried");
    assert_eq!(
        elastic_run.retry_queue_len, 0,
        "retry queue still holds parked joins at the horizon"
    );
    assert!(elastic_run.final_provisioned_mbps > 200.0);
}

/// The diurnal scenario is pure in the seed: equal scenarios export
/// byte-identical JSON, different seeds do not.
#[test]
fn diurnal_wave_json_is_byte_identical_per_seed() {
    let a = run_diurnal(&small_wave(9, true)).figure.to_json();
    let b = run_diurnal(&small_wave(9, true)).figure.to_json();
    assert_eq!(a, b, "same-seed diurnal exports diverged");
    let c = run_diurnal(&small_wave(10, true)).figure.to_json();
    assert_ne!(a, c, "different seeds produced identical exports");
}

/// Provisioned capacity follows the wave: it climbs above the starting
/// pool for the kickoff/peaks and is released again in the troughs —
/// while a static run's provisioned line never moves.
#[test]
fn provisioned_capacity_tracks_the_diurnal_wave() {
    let elastic = run_diurnal(&small_wave(17, true));
    assert!(
        elastic.autoscale_ups >= 2,
        "expected repeated scale-ups across days, got {}",
        elastic.autoscale_ups
    );
    assert!(
        elastic.autoscale_downs >= 1,
        "capacity was never released in a trough"
    );
    let start = elastic.provisioned_series.first().expect("samples").1;
    let peak = elastic
        .provisioned_series
        .iter()
        .map(|&(_, v)| v)
        .fold(0.0_f64, f64::max);
    assert!(
        peak > start,
        "provisioned capacity never rose above the starting pool"
    );
    // After the peak the staircase steps back down.
    let peak_at = elastic
        .provisioned_series
        .iter()
        .position(|&(_, v)| v == peak)
        .expect("peak sample exists");
    assert!(
        elastic.provisioned_series[peak_at..]
            .iter()
            .any(|&(_, v)| v < peak),
        "the staircase never came down after its peak"
    );
    assert!(elastic.provisioned_dollars > 0.0);

    let static_run = run_diurnal(&small_wave(17, false));
    assert!(
        static_run
            .provisioned_series
            .iter()
            .all(|&(_, v)| v == static_run.provisioned_series[0].1),
        "a static pool's provisioned line moved"
    );
    assert_eq!(static_run.autoscale_ups + static_run.autoscale_downs, 0);
}

//! Comparative invariants between 4D TeleCast and its baselines — the
//! qualitative claims behind Figure 15 and the ablations, asserted on
//! identical workloads.

use telecast::{OutboundPolicy, SessionConfig, TelecastSession};
use telecast_baselines::{
    equal_split_outbound, fifo_placement, no_layering, priority_first_outbound,
    random_dissemination,
};
use telecast_cdn::CdnConfig;
use telecast_media::{ArrivalModel, ViewChoice, ViewerWorkload};
use telecast_net::{Bandwidth, BandwidthProfile};
use telecast_sim::{SimDuration, SimRng};

struct Outcome {
    acceptance: f64,
    effective_bw: f64,
    mean_depth: f64,
    mean_streams: f64,
}

fn run(config: SessionConfig, viewers: usize) -> Outcome {
    let mut session = TelecastSession::builder(config).viewers(viewers).build();
    let mut rng = SimRng::seed_from_u64(77);
    let workload = ViewerWorkload::builder(viewers, 8)
        .arrivals(ArrivalModel::Staggered {
            gap: SimDuration::from_millis(25),
        })
        .view_choice(ViewChoice::Zipf { s: 0.8 })
        .build(&mut rng);
    session.run_workload(&workload);
    let per_viewer = session.streams_per_viewer();
    let admitted: Vec<_> = per_viewer.iter().filter(|&&n| n > 0).collect();
    Outcome {
        acceptance: session.metrics().acceptance_ratio(),
        effective_bw: session.effective_bandwidth_ratio(),
        mean_depth: session.mean_tree_depth(),
        mean_streams: if admitted.is_empty() {
            0.0
        } else {
            admitted.iter().copied().sum::<usize>() as f64 / admitted.len() as f64
        },
    }
}

fn tight_config(seed: u64) -> SessionConfig {
    SessionConfig::default()
        .with_seed(seed)
        .with_outbound(BandwidthProfile::uniform_mbps(2, 14))
        .with_cdn(CdnConfig::default().with_outbound(Bandwidth::from_mbps(900)))
}

#[test]
fn telecast_beats_random_on_acceptance() {
    let telecast = run(tight_config(1), 150);
    let random = run(random_dissemination(tight_config(1)), 150);
    assert!(
        telecast.acceptance > random.acceptance,
        "TeleCast {} must beat Random {}",
        telecast.acceptance,
        random.acceptance
    );
    // The paper's gap at scale is ~10-20 points; require a visible gap.
    assert!(
        telecast.acceptance - random.acceptance > 0.03,
        "gap too small: {} vs {}",
        telecast.acceptance,
        random.acceptance
    );
    // TeleCast actually builds P2P dissemination trees (depth 0 would mean
    // everyone hangs off the CDN and the comparison is vacuous).
    assert!(
        telecast.mean_depth > 0.0,
        "TeleCast mean tree depth was {}",
        telecast.mean_depth
    );
}

#[test]
fn more_probes_narrow_the_random_gap() {
    let one = run(random_dissemination(tight_config(2)), 120);
    let many = run(
        telecast_baselines::random_dissemination_with_probes(tight_config(2), 8),
        120,
    );
    assert!(
        many.acceptance >= one.acceptance,
        "more probes cannot hurt: {} vs {}",
        many.acceptance,
        one.acceptance
    );
}

#[test]
fn push_down_grants_incentive_depths() {
    // The paper's Overlay Property: viewers engaging more outbound
    // bandwidth end up closer to the root (lower delay) — the incentive
    // to contribute. Compare mean tree depth of strong (≥ 10 Mbps) vs
    // weak (≤ 4 Mbps) contributors under push-down.
    let config = tight_config(3);
    let mut session = TelecastSession::builder(config).viewers(150).build();
    let mut rng = SimRng::seed_from_u64(77);
    let workload = ViewerWorkload::builder(150, 8)
        .arrivals(ArrivalModel::Staggered {
            gap: SimDuration::from_millis(25),
        })
        .view_choice(ViewChoice::Zipf { s: 0.8 })
        .build(&mut rng);
    session.run_workload(&workload);

    let mut strong = Vec::new();
    let mut weak = Vec::new();
    for &v in session.viewer_ids() {
        let state = session.viewer(v).unwrap();
        let depths = session.viewer_tree_depths(v);
        if depths.is_empty() {
            continue;
        }
        let mean = depths.iter().sum::<usize>() as f64 / depths.len() as f64;
        let obw = state.ports.outbound.total();
        if obw >= Bandwidth::from_mbps(10) {
            strong.push(mean);
        } else if obw <= Bandwidth::from_mbps(4) {
            weak.push(mean);
        }
    }
    assert!(
        !strong.is_empty() && !weak.is_empty(),
        "both cohorts populated"
    );
    let strong_mean = strong.iter().sum::<f64>() / strong.len() as f64;
    let weak_mean = weak.iter().sum::<f64>() / weak.len() as f64;
    assert!(
        strong_mean < weak_mean,
        "strong contributors ({strong_mean:.2}) should sit above weak ones ({weak_mean:.2})"
    );
}

#[test]
fn outbound_policies_express_fig8_tradeoff() {
    // Squeeze the CDN so the P2P allocation policy decides outcomes.
    // Round-robin's design goal is the middle of Fig. 8's trade-off:
    // maximum *total* accepted streams. Priority-first starves every
    // non-top tree of P2P slots (with 2 Mbps streams the remainder never
    // fits a second stream), so once the CDN pool binds, later viewers
    // fail site coverage and are rejected outright; equal-split wastes
    // fragmented capacity. Round-robin must dominate both on acceptance.
    let squeeze = |c: SessionConfig| {
        c.with_cdn(CdnConfig::default().with_outbound(Bandwidth::from_mbps(450)))
    };
    let rr = run(squeeze(tight_config(4)), 150);
    let pf = run(priority_first_outbound(squeeze(tight_config(4))), 150);
    let es = run(equal_split_outbound(squeeze(tight_config(4))), 150);
    assert!(
        rr.acceptance + 1e-9 >= pf.acceptance,
        "round-robin ({}) must accept at least as much as priority-first ({})",
        rr.acceptance,
        pf.acceptance
    );
    assert!(
        rr.acceptance + 1e-9 >= es.acceptance,
        "round-robin ({}) must accept at least as much as equal-split ({})",
        rr.acceptance,
        es.acceptance
    );
    // The other side of the trade-off: among the viewers each policy
    // admits, priority-first's survivors enjoy full views (they joined
    // while the CDN could still top them up).
    assert!(
        pf.mean_streams >= rr.mean_streams - 1.5,
        "priority-first quality {} collapsed below round-robin {}",
        pf.mean_streams,
        rr.mean_streams
    );
}

#[test]
fn layering_preserves_effective_bandwidth() {
    let mut slow_hops = tight_config(5).with_cdn(CdnConfig::unbounded());
    slow_hops.hop_processing = SimDuration::from_millis(250);
    let with = run(slow_hops.clone(), 150);
    let without = run(no_layering(slow_hops), 150);
    assert!(
        (with.effective_bw - 1.0).abs() < 1e-9,
        "layering keeps 100%"
    );
    assert!(
        without.effective_bw < with.effective_bw,
        "no-layering must lose effective bandwidth: {} vs {}",
        without.effective_bw,
        with.effective_bw
    );
}

#[test]
fn all_policies_accept_everyone_when_resources_abound() {
    // With an unbounded CDN every scheme reaches ρ = 1 — the comparison
    // only separates them under scarcity.
    let lavish = SessionConfig::default()
        .with_seed(6)
        .with_outbound(BandwidthProfile::fixed_mbps(10))
        .with_cdn(CdnConfig::unbounded());
    for config in [
        lavish.clone(),
        random_dissemination(lavish.clone()),
        fifo_placement(lavish.clone()),
        {
            let mut c = lavish.clone();
            c.outbound_policy = OutboundPolicy::EqualSplit;
            c
        },
    ] {
        let outcome = run(config, 80);
        assert!(
            (outcome.acceptance - 1.0).abs() < 1e-9,
            "expected ρ=1, got {}",
            outcome.acceptance
        );
    }
}

//! Flash crowd and mass departure — the scale stress of challenge (3).
//!
//! The default tier: 500 viewers join at the same instant (a broadcast
//! kickoff), then half the audience leaves mid-session, contrasting
//! TeleCast's degree push-down with the Random baseline on identical
//! workloads. The `large` tier scales the kickoff to 10,000 viewers on
//! the O(n) coordinate delay model — the population the dense delay
//! matrix cannot reach — with the same mid-session departure wave.
//!
//! ```sh
//! cargo run --release -p telecast-apps --example flash_crowd           # 500 viewers
//! cargo run --release -p telecast-apps --example flash_crowd -- large # 10,000 viewers
//! ```

use telecast::{DelayModelChoice, SessionConfig, TelecastSession};
use telecast_baselines::random_dissemination;
use telecast_cdn::CdnConfig;
use telecast_media::{ArrivalModel, ViewChoice, ViewerWorkload};
use telecast_net::{Bandwidth, BandwidthProfile};
use telecast_sim::{SimDuration, SimRng};

fn run(label: &str, config: SessionConfig, viewers: usize) {
    let mut session = TelecastSession::builder(config).viewers(viewers).build();
    let mut rng = SimRng::seed_from_u64(5);
    let workload = ViewerWorkload::builder(viewers, session.catalog().len())
        .arrivals(ArrivalModel::Flash)
        .view_choice(ViewChoice::Zipf { s: 0.8 })
        .departures(0.5, SimDuration::from_secs(90))
        .build(&mut rng);
    session.run_workload(&workload);

    let m = session.metrics();
    println!("-- {label} ({} delays) --", session.delay_backend().kind());
    println!("  acceptance ratio ρ : {:.3}", m.acceptance_ratio());
    println!("  peak CDN usage     : {:.1} Mbps", m.peak_cdn_mbps());
    println!("  victims recovered  : {}", m.victims.value());
    println!(
        "  join delay p50/p99 : {:.0}/{:.0} ms",
        m.join_delays_ms.percentile(50.0).unwrap_or(0.0),
        m.join_delays_ms.percentile(99.0).unwrap_or(0.0),
    );
}

fn main() {
    let large = std::env::args().nth(1).as_deref() == Some("large");
    let (viewers, cdn_mbps) = if large {
        (10_000, 48_000)
    } else {
        (500, 3_000)
    };
    println!("== flash crowd: {viewers} simultaneous joins, 50% depart ==");
    let base = SessionConfig::default()
        .with_outbound(BandwidthProfile::uniform_mbps(2, 14))
        .with_cdn(CdnConfig::default().with_outbound(Bandwidth::from_mbps(cdn_mbps)))
        .with_seed(77);
    run("4D TeleCast (degree push-down)", base.clone(), viewers);
    if large {
        // The Random baseline probes the whole pool per stream; at this
        // population it adds nothing over the 500-viewer contrast, so
        // the large tier reports push-down only.
        return;
    }
    run(
        "Random dissemination baseline",
        random_dissemination(base.clone()),
        viewers,
    );
    // The paper's setup stays dense at this population; show the O(n)
    // backend produces the same qualitative picture.
    let coords = base.with_delay_model(DelayModelChoice::Coordinate);
    run("4D TeleCast on coordinate delays", coords, viewers);
}

//! Flash crowd and mass departure — the scale stress of challenge (3).
//!
//! 500 viewers join at the same instant (a broadcast kickoff), then half
//! the audience leaves mid-session. The example contrasts TeleCast's
//! degree push-down with the Random baseline on identical workloads.
//!
//! ```sh
//! cargo run --release -p telecast-apps --example flash_crowd
//! ```

use telecast::{SessionConfig, TelecastSession};
use telecast_baselines::random_dissemination;
use telecast_cdn::CdnConfig;
use telecast_media::{ArrivalModel, ViewChoice, ViewerWorkload};
use telecast_net::{Bandwidth, BandwidthProfile};
use telecast_sim::{SimDuration, SimRng};

fn run(label: &str, config: SessionConfig) {
    let mut session = TelecastSession::builder(config).viewers(500).build();
    let mut rng = SimRng::seed_from_u64(5);
    let workload = ViewerWorkload::builder(500, session.catalog().len())
        .arrivals(ArrivalModel::Flash)
        .view_choice(ViewChoice::Zipf { s: 0.8 })
        .departures(0.5, SimDuration::from_secs(90))
        .build(&mut rng);
    session.run_workload(&workload);

    let m = session.metrics();
    println!("-- {label} --");
    println!("  acceptance ratio ρ : {:.3}", m.acceptance_ratio());
    println!("  peak CDN usage     : {:.1} Mbps", m.peak_cdn_mbps());
    println!("  victims recovered  : {}", m.victims.value());
    println!(
        "  join delay p50/p99 : {:.0}/{:.0} ms",
        m.join_delays_ms.percentile(50.0).unwrap_or(0.0),
        m.join_delays_ms.percentile(99.0).unwrap_or(0.0),
    );
}

fn main() {
    println!("== flash crowd: 500 simultaneous joins, 50% depart ==");
    let base = SessionConfig::default()
        .with_outbound(BandwidthProfile::uniform_mbps(2, 14))
        .with_cdn(CdnConfig::default().with_outbound(Bandwidth::from_mbps(3_000)))
        .with_seed(77);
    run("4D TeleCast (degree push-down)", base.clone());
    run("Random dissemination baseline", random_dissemination(base));
}

//! Exergaming audience — heavy view switching.
//!
//! Viewers of an immersive light-saber match hop between camera views to
//! follow the action. View changes are served instantly from the CDN
//! while the background join rebuilds the P2P position (§VI); switching
//! also orphans downstream viewers ("victims") who are recovered at
//! their current delay layer.
//!
//! ```sh
//! cargo run --release -p telecast-apps --example exergaming_audience
//! ```

use telecast::{SessionConfig, TelecastSession};
use telecast_media::{ArrivalModel, ViewChoice, ViewerWorkload};
use telecast_net::BandwidthProfile;
use telecast_sim::{SimDuration, SimRng};

fn main() {
    let mut config = SessionConfig::default()
        .with_outbound(BandwidthProfile::uniform_mbps(2, 10))
        .with_seed(33);
    // Run the §VI delay-layer adaptation loop alongside the churn.
    config.adaptation_period = Some(SimDuration::from_secs(30));
    let mut session = TelecastSession::builder(config).viewers(400).build();

    let mut rng = SimRng::seed_from_u64(99);
    let workload = ViewerWorkload::builder(400, session.catalog().len())
        .arrivals(ArrivalModel::Staggered {
            gap: SimDuration::from_millis(30),
        })
        .view_choice(ViewChoice::Zipf { s: 0.8 })
        // Each fan changes views ~2 times over the first minute.
        .view_changes(2.0, SimDuration::from_secs(60))
        .build(&mut rng);
    session.run_workload(&workload);

    let m = session.metrics();
    println!("== exergaming audience, 400 viewers, ~800 view changes ==");
    println!("acceptance ratio ρ     : {:.3}", m.acceptance_ratio());
    println!("view changes served    : {}", m.view_change_delays_ms.len());
    for p in [50.0, 90.0, 99.0] {
        println!(
            "view-change delay p{:<3}: {:>6.0} ms",
            p as u32,
            m.view_change_delays_ms.percentile(p).unwrap_or(0.0)
        );
    }
    println!(
        "join delay p50         : {:>6.0} ms (view change is the fast path)",
        m.join_delays_ms.percentile(50.0).unwrap_or(0.0)
    );
    println!("victims created        : {}", m.victims.value());
    println!(
        "victims repositioned   : {} (rest stayed on the CDN)",
        m.victims_repositioned.value()
    );
    println!(
        "subscription messages  : {}",
        m.subscription_messages.value()
    );
    // Despite churn, every connected viewer still renders in sync.
    assert!((session.effective_bandwidth_ratio() - 1.0).abs() < 1e-9);
    println!("effective bandwidth    : 100% (κ bound maintained through churn)");
}

//! Quickstart: stand up a 4D TeleCast session, join a small audience,
//! and read the headline metrics.
//!
//! ```sh
//! cargo run --release -p telecast-apps --example quickstart
//! ```

use telecast::{SessionConfig, TelecastSession};
use telecast_media::ViewId;
use telecast_net::BandwidthProfile;

fn main() {
    // The paper's evaluation setup: 2 producer sites × 8 cameras at
    // 2 Mbps, 6-stream views, Δ = 60 s CDN, κ = 2 delay layers.
    let config = SessionConfig::default()
        .with_outbound(BandwidthProfile::uniform_mbps(4, 14))
        .with_seed(1);

    let mut session = TelecastSession::builder(config).viewers(25).build();

    // Everyone watches the front view; joins go through the full
    // GSC → LSC → allocation → topology → subscription protocol.
    for viewer in session.viewer_ids().to_vec() {
        session
            .request_join(viewer, ViewId::new(0))
            .expect("fresh viewers can join");
    }
    session.run_to_idle();

    let m = session.metrics();
    println!("acceptance ratio ρ   : {:.3}", m.acceptance_ratio());
    println!("admitted viewers     : {}", m.admitted_viewers.value());
    println!(
        "CDN outbound in use  : {:.1} Mbps",
        session.cdn().outbound().used().as_mbps_f64()
    );
    println!(
        "streams fed by CDN   : {:.1}%",
        session.cdn_stream_fraction() * 100.0
    );
    println!(
        "median join delay    : {:.0} ms",
        m.join_delays_ms.percentile(50.0).unwrap_or(0.0)
    );

    // Every connected viewer renders a synchronous view: the κ-bounded
    // delay layers keep inter-stream skew within the 300 ms buffer.
    for &v in session.viewer_ids() {
        let state = session.viewer(v).expect("pool viewer");
        if let (Some(min), Some(max)) = (state.layers().min(), state.layers().max()) {
            assert!(max - min <= session.scheme().kappa());
        }
    }
    println!("view synchronisation : κ bound holds for every viewer");
}

//! Importing a real PlanetLab ping trace.
//!
//! The evaluation normally runs on the synthetic PlanetLab-style matrix
//! (the original 4-hour archive is no longer retrievable), but the
//! original `src dst rtt_ms` text format can be dropped in unchanged.
//! This example parses a small embedded trace, compares it with the
//! synthetic generator, and shows both behind the same `DelayModel`
//! trait.
//!
//! ```sh
//! cargo run --release -p telecast-apps --example trace_import
//! ```

use telecast_net::{DelayModel, NodeKind, NodeRegistry, Region, SyntheticPlanetLab, TraceMatrix};
use telecast_sim::SimTime;

// A miniature excerpt in the original format: "src dst rtt_ms" per line,
// repeated measurements averaged.
const TRACE: &str = "\
# planetlab pairwise pings (ms RTT)
0 1 84.2
1 0 80.6
0 2 161.8
2 0 158.9
1 2 208.4
2 1 204.0
0 1 88.0
";

fn main() {
    let trace = TraceMatrix::parse(TRACE).expect("well-formed trace");
    println!("parsed {} directed pairs", trace.measured_pairs());

    let mut nodes = NodeRegistry::new();
    let ids: Vec<_> = [Region::NorthAmerica, Region::Europe, Region::Asia]
        .into_iter()
        .map(|r| nodes.add(NodeKind::Viewer, r))
        .collect();

    println!("\n  pair     trace(one-way)   synthetic(one-way)");
    let synthetic = SyntheticPlanetLab::generate(&nodes, 7);
    for (i, &a) in ids.iter().enumerate() {
        for &b in &ids[i + 1..] {
            let measured = trace.one_way(SimTime::ZERO, a, b);
            let synth = synthetic.one_way(SimTime::ZERO, a, b);
            println!("  {a}->{b}      {measured}            {synth}");
        }
    }

    // Both implement DelayModel, so either can back a session's protocol
    // legs; unmeasured pairs in a real trace fall back to the median.
    let unmeasured = trace.one_way(SimTime::ZERO, ids[0], ids[0]);
    assert!(unmeasured.is_zero());
    println!(
        "\nRTT 0↔1 via trace: {}",
        trace.rtt(SimTime::ZERO, ids[0], ids[1])
    );
}

//! Collaborative dancing broadcast — the paper's motivating scenario.
//!
//! Two remote dancers (producer sites) perform in a shared virtual
//! space; a large audience tunes in with Zipf-skewed view popularity.
//! The example also drops to the frame level for one viewer: a synthetic
//! TEEVE trace feeds its buffer at the delays the overlay computed, and
//! the renderer picks synchronised frames — demonstrating that the delay
//! layers actually make 4D content renderable.
//!
//! ```sh
//! cargo run --release -p telecast-apps --example collaborative_dancing
//! ```

use telecast::{DataPlane, SessionConfig, TelecastSession};
use telecast_media::{ArrivalModel, ViewChoice, ViewerWorkload};
use telecast_net::BandwidthProfile;
use telecast_sim::{SimDuration, SimRng, SimTime};

fn main() {
    let config = SessionConfig::default()
        .with_outbound(BandwidthProfile::uniform_mbps(0, 12))
        .with_seed(2026);
    let mut session = TelecastSession::builder(config).viewers(600).build();

    // The audience arrives over ~30 s, most of it wanting the two front
    // views of the dance floor.
    let mut rng = SimRng::seed_from_u64(7);
    let workload = ViewerWorkload::builder(600, session.catalog().len())
        .arrivals(ArrivalModel::Poisson {
            mean_gap: SimDuration::from_millis(50),
        })
        .view_choice(ViewChoice::Zipf { s: 1.1 })
        .build(&mut rng);
    session.run_workload(&workload);

    let m = session.metrics();
    println!("== collaborative dancing, 600 viewers ==");
    println!("acceptance ratio ρ   : {:.3}", m.acceptance_ratio());
    println!(
        "CDN outbound in use  : {:.1} Mbps (peak {:.1})",
        session.cdn().outbound().used().as_mbps_f64(),
        m.peak_cdn_mbps()
    );
    println!(
        "P2P share of streams : {:.1}%",
        (1.0 - session.cdn_stream_fraction()) * 100.0
    );
    let layers = session.layer_snapshot();
    let layer0 = layers.iter().filter(|&&l| l == 0).count();
    println!(
        "viewers at Layer-0   : {:.1}%  (deepest layer {})",
        layer0 as f64 / layers.len().max(1) as f64 * 100.0,
        layers.iter().max().copied().unwrap_or(0)
    );

    // ---- frame-level close-up: pump real frames through every buffer ----
    // Synthetic TEEVE traces flow into each viewer's buffer at the
    // effective delays the overlay computed; then the whole audience
    // attempts a synchronous render at its media playback point.
    let mut plane = DataPlane::new(42);
    let slowest = session
        .viewer_ids()
        .iter()
        .filter_map(|&v| {
            session
                .viewer(v)
                .ok()
                .and_then(|s| s.subs.values().map(|sub| sub.e2e).max())
        })
        .max()
        .expect("audience has subscriptions");
    plane.pump(
        &session,
        SimTime::ZERO + slowest + SimDuration::from_secs(3),
    );
    let report = plane.render_all(
        &session,
        SimTime::ZERO + slowest + SimDuration::from_secs(1),
        SimDuration::from_millis(100),
    );
    println!(
        "frame-level check    : {} viewers rendered a synchronous 4D view, {} failed",
        report.rendered, report.failed
    );
}

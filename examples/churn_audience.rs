//! A sustained audience under continuous churn — the event-driven
//! counterpart of the `flash_crowd` example.
//!
//! 2,000 viewers join at time zero, then a steady-state churn process
//! (Poisson arrivals, lognormal dwell, 10% abrupt failures among the
//! leavers) keeps 5% of the audience per minute flowing through the
//! overlay for ten simulated minutes. Every join, departure, failure,
//! victim recovery and reposition is an engine event; the GSC monitor
//! samples the population every ten seconds.
//!
//! ```sh
//! cargo run --release -p telecast-apps --example churn_audience
//! cargo run --release -p telecast-apps --example churn_audience -- large # 20,000 viewers
//! ```

use telecast::{DelayModelChoice, SessionConfig, TelecastSession};
use telecast_cdn::CdnConfig;
use telecast_media::ChurnSpec;
use telecast_net::{Bandwidth, BandwidthProfile};
use telecast_sim::{SimDuration, SimTime};

fn main() {
    let large = std::env::args().nth(1).as_deref() == Some("large");
    let viewers: usize = if large { 20_000 } else { 2_000 };
    let minutes = 10u64;
    let churn_per_minute = 0.05;

    let config = SessionConfig::default()
        .with_outbound(BandwidthProfile::uniform_mbps(2, 14))
        .with_cdn(CdnConfig::default().with_outbound(Bandwidth::from_mbps(viewers as u64 * 5)))
        .with_delay_model(DelayModelChoice::Auto)
        .with_monitor_period(SimDuration::from_secs(10))
        .with_seed(2_024);

    let mut session = TelecastSession::builder(config).viewers(viewers).build();
    println!(
        "== churn audience: {viewers} viewers, {:.0}%/min for {minutes} simulated minutes \
         ({} delays) ==",
        churn_per_minute * 100.0,
        session.delay_backend().kind(),
    );

    let horizon = SimTime::from_secs(minutes * 60);
    session.start_churn(
        ChurnSpec::steady_state(viewers, churn_per_minute),
        horizon,
        viewers,
    );
    session.run_until(horizon);

    let m = session.metrics();
    println!("  connected at horizon : {}", session.connected_viewers());
    println!(
        "  arrivals/departs/fails : {}/{}/{}",
        m.churn_arrivals.value(),
        m.churn_departures.value(),
        m.churn_failures.value(),
    );
    println!(
        "  victims recovered    : {} ({} repositioned P2P)",
        m.victims.value(),
        m.victims_repositioned.value(),
    );
    println!("  acceptance ratio ρ   : {:.3}", m.acceptance_ratio());
    println!("  peak CDN usage       : {:.1} Mbps", m.peak_cdn_mbps());
    // The monitor's population curve, down-sampled to one line per
    // simulated minute.
    println!("  population (per min) :");
    for (at, pop) in m
        .population
        .points()
        .iter()
        .filter(|(at, _)| at.as_micros() % 60_000_000 == 0)
    {
        println!(
            "    t={:>4}s {:>8}",
            at.as_micros() / 1_000_000,
            *pop as u64
        );
    }
}

//! Offline stand-in for the real `serde_derive`.
//!
//! The registry is unreachable in this build environment, so the derive
//! macros expand to nothing: the sibling `serde` stub blanket-implements
//! its marker traits for every type, which keeps `#[derive(Serialize,
//! Deserialize)]` attributes (and any `T: Serialize` bounds) compiling.
//! Code that needs actual serialisation writes it by hand — see
//! `telecast-bench`'s `table` module for the JSON the figures export.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; the trait is blanket-implemented in `serde`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; the trait is blanket-implemented in `serde`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! The `any::<T>()` entry point for types with a canonical strategy.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Canonical whole-domain strategy for `T` (supported for the primitive
/// types the suites use).
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! any_int {
    ($($t:ty),*) => {
        $(
            impl Strategy for Any<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*
    };
}

any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

//! The [`Strategy`] trait and its combinators.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// Generates values of one type for property cases.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as u64) - (*self.start() as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    self.start() + rng.below(span + 1) as $t
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// A heap-allocated strategy, the element type of [`Union`].
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Boxes a strategy; used by the `prop_oneof!` expansion.
pub fn boxed<S>(strategy: S) -> BoxedStrategy<S::Value>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

/// Uniform choice between several strategies with one value type.
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates a union over the given arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let arm = rng.below(self.arms.len() as u64) as usize;
        self.arms[arm].generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..200 {
            let v = (3u16..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn map_and_union_compose() {
        let mut rng = TestRng::from_name("compose");
        let strategy = crate::prop_oneof![
            (0u32..5).prop_map(|v| v * 10),
            (5u32..10).prop_map(|v| v + 100),
        ];
        for _ in 0..100 {
            let v = strategy.generate(&mut rng);
            assert!(v % 10 == 0 && v < 50 || (105..110).contains(&v), "v={v}");
        }
    }
}

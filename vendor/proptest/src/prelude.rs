//! Everything a property-test module needs in scope.

pub use crate::arbitrary::any;
pub use crate::strategy::{Just, Strategy};
pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

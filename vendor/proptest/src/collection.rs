//! Collection strategies.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Vec`s whose length is drawn from `len` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.len.generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_elements_in_range() {
        let mut rng = TestRng::from_name("vec");
        let strategy = vec(0u8..4, 2..7);
        for _ in 0..100 {
            let v = strategy.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 4));
        }
    }
}

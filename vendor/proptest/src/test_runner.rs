//! Deterministic case generation and failure reporting.

use std::fmt;

/// Number of generated cases per property (`PROPTEST_CASES` overrides).
pub fn case_count() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// A failed property case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: String) -> Self {
        TestCaseError(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic generator seeded from the property's name (splitmix64),
/// so failures reproduce identically on every run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, then mixed through splitmix64 steps.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty generation bound");
        // Modulo is biased for huge bounds, which is acceptable for test
        // input generation.
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::from_name("bound");
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}

//! Offline stand-in for the real `proptest` crate.
//!
//! The build environment has no registry access, so this crate implements
//! the subset of the proptest surface the workspace's property suites use:
//!
//! * [`proptest!`] — turns `fn name(arg in strategy, ...) { body }` items
//!   into `#[test]` functions that run the body over many generated cases;
//! * [`prop_assert!`] / [`prop_assert_eq!`] — case-level assertions that
//!   report the failing case index;
//! * [`prop_oneof!`] — union of strategies with a common value type;
//! * strategies for integer and float ranges, tuples, [`collection::vec`],
//!   [`option::of`], [`arbitrary::any`], and [`strategy::Strategy::prop_map`].
//!
//! Unlike the real crate there is no shrinking and no persisted failure
//! seeds; generation is **fully deterministic** (seeded from the test
//! function's name), so a failing case reproduces on every run. The case
//! count defaults to 64 and can be raised with `PROPTEST_CASES`.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]`-able function running the body over
/// [`test_runner::case_count`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::case_count();
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(err) = outcome {
                        ::core::panic!("property failed on case {}/{}: {}", case + 1, cases, err);
                    }
                }
            }
        )*
    };
}

/// Case-level assertion: fails the current generated case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Case-level equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {:?} == {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Union of strategies producing the same value type; each generated case
/// picks one arm uniformly at random.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::boxed($arm)),+
        ])
    };
}

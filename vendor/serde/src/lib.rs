//! Offline stand-in for the real `serde`.
//!
//! This build environment has no registry access, so this crate keeps the
//! workspace's `#[derive(Serialize, Deserialize)]` attributes compiling
//! without pulling in the real framework: the traits are empty markers
//! blanket-implemented for every type, and the derives (re-exported from
//! the sibling `serde_derive` stub) expand to nothing.
//!
//! Nothing in the workspace performs serde-driven (de)serialisation today;
//! the one JSON producer (`telecast-bench`'s figure export) writes and
//! parses its JSON by hand. When a registry is available, point the
//! workspace `serde` dependency back at crates.io and everything keeps
//! compiling — the real derives simply start generating real impls.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; implemented for every type.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; implemented for every type.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

impl<T: ?Sized> DeserializeOwned for T {}

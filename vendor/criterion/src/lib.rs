//! Offline stand-in for the real `criterion` crate.
//!
//! The build environment has no registry access, so this crate implements
//! just enough of the criterion API for the workspace's `benches/` targets
//! to compile and produce useful wall-clock numbers: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. There is no statistical analysis, HTML
//! report, or baseline comparison — each benchmark runs a short warm-up,
//! then a fixed sample budget, and prints min/mean per-iteration times.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How long each benchmark samples for (per target, after warm-up).
const SAMPLE_BUDGET: Duration = Duration::from_millis(300);
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

/// Entry point handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `f` as a standalone benchmark named `id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's sample budget is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub's sample budget is fixed.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Runs `f` as `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id.into()), f);
        self
    }

    /// Runs `f` with a borrowed input value as `group/id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Ends the group (a no-op in the stub).
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Creates an id like `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(value: &str) -> Self {
        BenchmarkId {
            text: value.to_string(),
        }
    }
}

/// How `iter_batched` amortises setup cost; the stub runs one setup per
/// iteration regardless.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small routine input.
    SmallInput,
    /// Large routine input.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Times one routine.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times repeated runs of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        self.run(|| {
            let start = Instant::now();
            black_box(routine());
            start.elapsed()
        });
    }

    /// Times repeated runs of `routine` over fresh inputs from `setup`;
    /// only the routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.run(|| {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            start.elapsed()
        });
    }

    fn run(&mut self, mut timed_once: impl FnMut() -> Duration) {
        let warmup_start = Instant::now();
        while warmup_start.elapsed() < WARMUP_BUDGET {
            timed_once();
        }
        let sample_start = Instant::now();
        loop {
            self.samples.push(timed_once());
            if sample_start.elapsed() >= SAMPLE_BUDGET {
                break;
            }
        }
    }
}

fn run_one<F>(id: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher::default();
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<50} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().expect("nonempty samples");
    println!(
        "{id:<50} iters {:>6}  min {:>12?}  mean {:>12?}",
        bencher.samples.len(),
        min,
        mean,
    );
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
